module AC = Affine_class
module L = Cfg.Loopnest
module P = Minisl.Polyhedron
module Cs = Minisl.Constr
module Af = Minisl.Affine
module Rat = Pp_util.Rat
module Sd = Statdep

type witness = {
  w_src : Vm.Isa.Sid.t;
  w_dst : Vm.Isa.Sid.t;
  w_ww : bool;
  w_region : int;
  w_src_iv : int array option;
  w_dst_iv : int array option;
  w_addr : int option;
}

type certificate = {
  ct_level : int;
  ct_pairs : int;
  ct_private : int list;
  ct_reductions : Vm.Isa.Sid.t list;
}

type verdict =
  | Certified of certificate
  | Race of witness list
  | Unknown of string

type dim_report = {
  dr_fid : int;
  dr_header : int;
  dr_loc : Vm.Prog.loc option;
  dr_depth : int;
  dr_verdict : verdict;
}

type t = { pc_sd : Sd.t; pc_dims : dim_report list }

let unit_vec n i = Array.init n (fun k -> if k = i then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Register def/use accounting (scalar privatisation via liveness)     *)
(* ------------------------------------------------------------------ *)

let operand_regs acc = function Vm.Isa.Reg r -> r :: acc | Vm.Isa.Imm _ -> acc

let instr_uses = function
  | Vm.Isa.Const _ | Vm.Isa.Fconst _ -> []
  | Vm.Isa.Mov (_, o)
  | Vm.Isa.Itof (_, o)
  | Vm.Isa.Ftoi (_, o)
  | Vm.Isa.Load (_, o) ->
      operand_regs [] o
  | Vm.Isa.Bin (_, _, a, b)
  | Vm.Isa.Fbin (_, _, a, b)
  | Vm.Isa.Cmp (_, _, a, b)
  | Vm.Isa.Fcmp (_, _, a, b) ->
      operand_regs (operand_regs [] a) b
  | Vm.Isa.Store (a, v) -> operand_regs (operand_regs [] a) v

let instr_def = function
  | Vm.Isa.Const (r, _)
  | Vm.Isa.Fconst (r, _)
  | Vm.Isa.Mov (r, _)
  | Vm.Isa.Bin (_, r, _, _)
  | Vm.Isa.Fbin (_, r, _, _)
  | Vm.Isa.Cmp (_, r, _, _)
  | Vm.Isa.Fcmp (_, r, _, _)
  | Vm.Isa.Load (r, _)
  | Vm.Isa.Itof (r, _)
  | Vm.Isa.Ftoi (r, _) ->
      Some r
  | Vm.Isa.Store _ -> None

let term_uses = function
  | Vm.Isa.Jump _ | Vm.Isa.Halt -> []
  | Vm.Isa.Br (c, _, _) -> operand_regs [] c
  | Vm.Isa.Call { args; _ } -> List.fold_left operand_regs [] args
  | Vm.Isa.Ret o -> (
      match o with Some o -> operand_regs [] o | None -> [])

(* whole-function use count of a register (reachability-insensitive:
   over-counting only makes the reduction recognizer more conservative) *)
let func_use_count (f : Vm.Prog.func) r =
  Array.fold_left
    (fun acc (b : Vm.Prog.block) ->
      let acc =
        Array.fold_left
          (fun acc i ->
            acc + List.length (List.filter (( = ) r) (instr_uses i)))
          acc b.instrs
      in
      acc + List.length (List.filter (( = ) r) (term_uses b.term)))
    0 f.blocks

let func_def_count (f : Vm.Prog.func) r =
  Array.fold_left
    (fun acc (b : Vm.Prog.block) ->
      let acc =
        Array.fold_left
          (fun acc i -> if instr_def i = Some r then acc + 1 else acc)
          acc b.instrs
      in
      match b.term with
      | Vm.Isa.Call { dst = Some d; _ } when d = r -> acc + 1
      | _ -> acc)
    0 f.blocks

(* ------------------------------------------------------------------ *)
(* Reduction recognition                                               *)
(* ------------------------------------------------------------------ *)

(* [Some tag] when [op] combines commutatively/associatively enough to
   reorder iterations; [`Left] ops only qualify with the loaded value
   as first operand (running difference = sum of negated terms). *)
let bin_tag = function
  | Vm.Isa.Add -> Some ("add", `Any)
  | Vm.Isa.Sub -> Some ("add", `Left)
  | Vm.Isa.Mul -> Some ("mul", `Any)
  | Vm.Isa.And -> Some ("and", `Any)
  | Vm.Isa.Or -> Some ("or", `Any)
  | Vm.Isa.Xor -> Some ("xor", `Any)
  | Vm.Isa.Div | Vm.Isa.Rem | Vm.Isa.Shl | Vm.Isa.Shr -> None

let fbin_tag = function
  | Vm.Isa.Fadd -> Some ("fadd", `Any)
  | Vm.Isa.Fsub -> Some ("fadd", `Left)
  | Vm.Isa.Fmul -> Some ("fmul", `Any)
  | Vm.Isa.Fdiv -> None

type chain = {
  ch_load : Sd.resolved;
  ch_store : Sd.resolved;
  ch_tag : string;  (** operator class; chains on a region must agree *)
}

(* A commutative read-modify-write chain rooted at resolved store [s]:
   a same-block earlier resolved load of the identical address
   function, combined by exactly one qualifying [Bin]/[Fbin] whose
   result feeds only the store and whose loaded input has no other
   use. *)
let chain_of (prog : Vm.Prog.t) under (s : Sd.resolved) =
  let fid = Vm.Isa.Sid.fid s.Sd.r_sid and bid = Vm.Isa.Sid.bid s.Sd.r_sid in
  let f = prog.funcs.(fid) in
  if bid < 0 || bid >= Array.length f.blocks then None
  else
    let blk = f.blocks.(bid) in
    let sidx = Vm.Isa.Sid.idx s.Sd.r_sid in
    if sidx < 0 || sidx >= Array.length blk.instrs then None
    else
      match blk.instrs.(sidx) with
      | Vm.Isa.Store (_, Vm.Isa.Reg rv) ->
          let candidates =
            List.filter
              (fun (l : Sd.resolved) ->
                (not l.Sd.r_store)
                && Vm.Isa.Sid.fid l.Sd.r_sid = fid
                && Vm.Isa.Sid.bid l.Sd.r_sid = bid
                && Vm.Isa.Sid.idx l.Sd.r_sid < sidx
                && l.Sd.r_region = s.Sd.r_region
                && l.Sd.r_base = s.Sd.r_base
                && l.Sd.r_coefs = s.Sd.r_coefs)
              under
          in
          let def_of rv =
            let found = ref None in
            Array.iteri
              (fun i ins -> if instr_def ins = Some rv then found := Some (i, ins))
              blk.instrs;
            !found
          in
          (* HIR [Let] lowers as [op t; Mov v, t]: follow single-use /
             single-def same-block copies so the recognizer sees through
             the variable slots on both sides of the combiner *)
          let rec root_def rv fuel =
            if fuel = 0 || func_def_count f rv <> 1 then None
            else
              match def_of rv with
              | Some (_, Vm.Isa.Mov (_, Vm.Isa.Reg rs))
                when func_use_count f rs = 1 ->
                  root_def rs (fuel - 1)
              | d -> d
          in
          let copy_of rl lidx =
            let res = ref (rl, lidx) in
            Array.iteri
              (fun i ins ->
                match ins with
                | Vm.Isa.Mov (rm, Vm.Isa.Reg r)
                  when r = rl && i > lidx && i < sidx
                       && func_use_count f rl = 1
                       && func_def_count f rm = 1 ->
                    res := (rm, i)
                | _ -> ())
              blk.instrs;
            !res
          in
          List.find_map
            (fun (l : Sd.resolved) ->
              let lidx = Vm.Isa.Sid.idx l.Sd.r_sid in
              match blk.instrs.(lidx) with
              | Vm.Isa.Load (rl0, _) when func_use_count f rv = 1 -> (
                  let rl, lidx' = copy_of rl0 lidx in
                  if func_use_count f rl <> 1 then None
                  else
                    match root_def rv 4 with
                    | Some (di, ins) when di > lidx' && di < sidx -> (
                        let tag_pos =
                          match ins with
                          | Vm.Isa.Bin (op, _, a, b') -> (
                              match bin_tag op with
                              | Some (tag, side) ->
                                  Some
                                    (tag, side, a = Vm.Isa.Reg rl,
                                     b' = Vm.Isa.Reg rl)
                              | None -> None)
                          | Vm.Isa.Fbin (op, _, a, b') -> (
                              match fbin_tag op with
                              | Some (tag, side) ->
                                  Some
                                    (tag, side, a = Vm.Isa.Reg rl,
                                     b' = Vm.Isa.Reg rl)
                              | None -> None)
                          | _ -> None
                        in
                        match tag_pos with
                        | Some (tag, side, on_left, on_right)
                          when (on_left || on_right)
                               && (side = `Any || (side = `Left && on_left))
                               && not (on_left && on_right) ->
                            Some { ch_load = l; ch_store = s; ch_tag = tag }
                        | _ -> None)
                    | _ -> None)
              | _ -> None)
            candidates
      | _ -> None

(* ------------------------------------------------------------------ *)
(* Privatisation                                                       *)
(* ------------------------------------------------------------------ *)

(* The store's written footprint is a dense (gap-free) address range:
   all inner trips constant and >= 1, and the non-zero strides
   telescope — sorted by magnitude, each stride is at most the length
   already covered. *)
let dense_store k (s : Sd.resolved) =
  let depth = Array.length s.Sd.r_coefs in
  let ok = ref true in
  let strides = ref [] in
  for j = k + 1 to depth - 1 do
    let base, cf = s.Sd.r_bounds.(j) in
    if base < 1 || Array.exists (( <> ) 0) cf then ok := false
    else if s.Sd.r_coefs.(j) <> 0 then
      strides := (abs s.Sd.r_coefs.(j), base) :: !strides
  done;
  !ok
  &&
  let sorted = List.sort compare !strides in
  let len = ref 1 and dense = ref true in
  List.iter
    (fun (c, trip) ->
      if c > !len then dense := false;
      len := !len + (c * (trip - 1)))
    sorted;
  !dense

(* Region [r] is privatisable at level [k]: every access's footprint is
   invariant in the coordinates up to [k], and every read is covered by
   a dense store whose level-[k+1] subtree completes strictly earlier
   in the same iteration. *)
let privatisable k accs_r =
  let invariant (a : Sd.resolved) =
    let depth = Array.length a.Sd.r_coefs in
    let ok = ref true in
    for i = 0 to min k (depth - 1) do
      if a.Sd.r_coefs.(i) <> 0 then ok := false
    done;
    for j = k + 1 to depth - 1 do
      let _, cf = a.Sd.r_bounds.(j) in
      for i = 0 to min k (Array.length cf - 1) do
        if cf.(i) <> 0 then ok := false
      done
    done;
    !ok
  in
  List.for_all invariant accs_r
  && List.for_all
       (fun (d : Sd.resolved) ->
         d.Sd.r_store
         || List.exists
              (fun (s : Sd.resolved) ->
                s.Sd.r_store
                && Array.length s.Sd.r_sched > k + 1
                && Array.length d.Sd.r_sched > k + 1
                && s.Sd.r_sched.(k + 1) < d.Sd.r_sched.(k + 1)
                && dense_store k s
                && d.Sd.r_lo >= s.Sd.r_lo
                && d.Sd.r_hi <= s.Sd.r_hi)
              accs_r)
       accs_r

(* ------------------------------------------------------------------ *)
(* Level-carried dependence polyhedra                                  *)
(* ------------------------------------------------------------------ *)

(* constraints of "an instance of [s] and a strictly-later-at-level-[k]
   instance of [d] (equal outer coordinates) touch the same address" *)
let carried_rows k (s : Sd.resolved) (d : Sd.resolved) =
  let ds = Array.length s.Sd.r_coefs and dd = Array.length d.Sd.r_coefs in
  let n = ds + dd in
  let doms =
    Sd.domain_rows n ~offset:0 s.Sd.r_bounds
    @ Sd.domain_rows n ~offset:ds d.Sd.r_bounds
  in
  let addr = Array.make n 0 in
  Array.iteri (fun i v -> addr.(i) <- v) s.Sd.r_coefs;
  Array.iteri (fun j v -> addr.(ds + j) <- addr.(ds + j) - v) d.Sd.r_coefs;
  let eqs =
    List.init k (fun i ->
        let v = Array.make n 0 in
        v.(i) <- 1;
        v.(ds + i) <- -1;
        Cs.make Cs.Eq v 0)
  in
  let lt =
    let v = Array.make n 0 in
    v.(ds + k) <- 1;
    v.(k) <- -1;
    Cs.make Cs.Ge v (-1)
  in
  (n, (Cs.make Cs.Eq addr (s.Sd.r_base - d.Sd.r_base) :: lt :: eqs) @ doms)

(* progressive coordinate fixing: round each LP minimum up to the first
   integer that stays feasible, yielding a concrete conflicting pair *)
let concrete_point n rows =
  let coords = Array.make n 0 in
  let rec fix rows i =
    if i = n then true
    else
      match Minisl.Lp.minimize (P.make n rows) (Af.of_int_coeffs (unit_vec n i) 0) with
      | Minisl.Lp.Opt m ->
          let c0 = Rat.ceil m in
          let rec try_c j =
            if j > 3 then false
            else
              let c = c0 + j in
              let rows' = Cs.make Cs.Eq (unit_vec n i) (-c) :: rows in
              if Minisl.Lp.feasible (P.make n rows') then begin
                coords.(i) <- c;
                fix rows' (i + 1)
              end
              else try_c (j + 1)
          in
          try_c 0
      | Minisl.Lp.Unbounded | Minisl.Lp.Infeasible -> false
  in
  if fix rows 0 then Some coords else None

let witness_of k (s : Sd.resolved) (d : Sd.resolved) =
  let ds = Array.length s.Sd.r_coefs in
  let n, rows = carried_rows k s d in
  let src_iv, dst_iv, addr =
    match concrete_point n rows with
    | Some c ->
        let src = Array.sub c 0 ds and dst = Array.sub c ds (n - ds) in
        let a = ref s.Sd.r_base in
        Array.iteri (fun i v -> a := !a + (s.Sd.r_coefs.(i) * v)) src;
        (Some src, Some dst, Some !a)
    | None -> (None, None, None)
  in
  { w_src = s.Sd.r_sid;
    w_dst = d.Sd.r_sid;
    w_ww = s.Sd.r_store && d.Sd.r_store;
    w_region = s.Sd.r_region;
    w_src_iv = src_iv;
    w_dst_iv = dst_iv;
    w_addr = addr }

(* ------------------------------------------------------------------ *)
(* The certifier                                                       *)
(* ------------------------------------------------------------------ *)

(* static blocks executing (possibly) inside the loop: the loop's
   members plus every block of transitively callable functions *)
let inside_blocks (prog : Vm.Prog.t) fid (lp : L.loop) =
  let inside = Hashtbl.create 32 in
  let fn_seen = Hashtbl.create 4 in
  let rec add_func g =
    if g >= 0 && g < Array.length prog.funcs && not (Hashtbl.mem fn_seen g)
    then begin
      Hashtbl.replace fn_seen g ();
      Array.iter
        (fun (b : Vm.Prog.block) ->
          Hashtbl.replace inside (g, b.bid) ();
          match b.term with
          | Vm.Isa.Call { callee; _ } -> add_func callee
          | _ -> ())
        prog.funcs.(g).blocks
    end
  in
  List.iter
    (fun m ->
      Hashtbl.replace inside (fid, m) ();
      let blocks = prog.funcs.(fid).blocks in
      if m >= 0 && m < Array.length blocks then
        match blocks.(m).term with
        | Vm.Isa.Call { callee; _ } -> add_func callee
        | _ -> ())
    lp.L.members;
  inside

let certify (sd : Sd.t) ~fid ~header =
  let prog = sd.Sd.prog in
  if fid < 0 || fid >= Array.length prog.funcs then Unknown "no such function"
  else begin
    (* chain accesses carrying this loop as a coordinate, and its level *)
    let under = ref [] and level = ref None and consistent = ref true in
    Hashtbl.iter
      (fun _ (r : Sd.resolved) ->
        Array.iteri
          (fun k (f, h) ->
            if f = fid && h = header then begin
              (match !level with
              | None -> level := Some k
              | Some k' -> if k' <> k then consistent := false);
              under := r :: !under
            end)
          r.Sd.r_dims)
      sd.Sd.resolved;
    let under =
      List.sort (fun a b -> compare a.Sd.r_sid b.Sd.r_sid) !under
    in
    if not !consistent then Unknown "loop appears at two chain depths"
    else
      match !level with
      | None -> Unknown "loop is not a chain dimension of the static model"
      | Some k -> (
          let func = prog.funcs.(fid) in
          let graph = Insn.static_cfg func in
          let forest = L.compute graph ~entry:0 in
          match L.loop_of_header forest header with
          | None -> Unknown "claimed header does not head a static loop"
          | Some lp -> (
              let inside = inside_blocks prog fid lp in
              let unresolved_inside =
                List.filter
                  (fun (sid, _, _) ->
                    Hashtbl.mem inside (Vm.Isa.Sid.fid sid, Vm.Isa.Sid.bid sid))
                  sd.Sd.unresolved
              in
              let any_store =
                List.exists (fun (r : Sd.resolved) -> r.Sd.r_store) under
                || List.exists (fun (_, st, _) -> st) unresolved_inside
              in
              (* scalar loop-carried values: registers live around the
                 back edge that the loop redefines must be induction
                 counters of this loop *)
              let fr = AC.analyse_func prog fid in
              let counters =
                List.concat_map
                  (fun (li : AC.loop_info) ->
                    if li.AC.li_header = header then
                      List.map (fun (r, _, _) -> r) li.AC.li_counters
                    else [])
                  fr.AC.fr_loops
              in
              let defined = Hashtbl.create 16 in
              List.iter
                (fun m ->
                  if m >= 0 && m < Array.length func.blocks then begin
                    Array.iter
                      (fun ins ->
                        match instr_def ins with
                        | Some r -> Hashtbl.replace defined r ()
                        | None -> ())
                      func.blocks.(m).instrs;
                    match func.blocks.(m).term with
                    | Vm.Isa.Call { dst = Some r; _ } ->
                        Hashtbl.replace defined r ()
                    | _ -> ()
                  end)
                lp.L.members;
              let carried_scalar =
                List.find_opt
                  (fun r ->
                    Hashtbl.mem defined r && not (List.mem r counters))
                  (Liveness.live_in func header)
              in
              match carried_scalar with
              | Some r ->
                  Unknown
                    (Printf.sprintf
                       "loop-carried scalar in r%d (not an induction counter)"
                       r)
              | None ->
                  if unresolved_inside <> [] && any_store then
                    let sid, _, reason = List.hd unresolved_inside in
                    Unknown
                      (Printf.sprintf "unresolved access %s inside the loop (%s)"
                         (Vm.Isa.Sid.to_string sid)
                         (Sd.reason_code reason))
                  else begin
                    (* decide every level-carried dependence polyhedron *)
                    let pairs = ref 0 in
                    let blocking = ref [] in
                    List.iter
                      (fun (s : Sd.resolved) ->
                        List.iter
                          (fun (d : Sd.resolved) ->
                            if
                              (s.Sd.r_store || d.Sd.r_store)
                              && s.Sd.r_region = d.Sd.r_region
                              && s.Sd.r_region > 0
                              && (s.Sd.r_sid <> d.Sd.r_sid || s.Sd.r_store)
                            then begin
                              incr pairs;
                              let n, rows = carried_rows k s d in
                              if Minisl.Lp.feasible (P.make n rows) then
                                blocking := (s, d) :: !blocking
                            end)
                          under)
                      under;
                    if !blocking = [] then
                      Certified
                        { ct_level = k;
                          ct_pairs = !pairs;
                          ct_private = [];
                          ct_reductions = [] }
                    else begin
                      (* discharge: reduction chains *)
                      let chains =
                        List.filter_map
                          (fun (s : Sd.resolved) ->
                            if s.Sd.r_store then chain_of prog under s
                            else None)
                          under
                      in
                      let region_tag = Hashtbl.create 4 in
                      let tag_ok = Hashtbl.create 4 in
                      List.iter
                        (fun c ->
                          let r = c.ch_store.Sd.r_region in
                          (match Hashtbl.find_opt region_tag r with
                          | Some t when t <> c.ch_tag ->
                              Hashtbl.replace tag_ok r false
                          | Some _ -> ()
                          | None ->
                              Hashtbl.replace region_tag r c.ch_tag;
                              if not (Hashtbl.mem tag_ok r) then
                                Hashtbl.replace tag_ok r true);
                          ())
                        chains;
                      let chain_sids = Hashtbl.create 8 in
                      List.iter
                        (fun c ->
                          if Hashtbl.find_opt tag_ok c.ch_store.Sd.r_region
                             = Some true
                          then begin
                            Hashtbl.replace chain_sids c.ch_load.Sd.r_sid ();
                            Hashtbl.replace chain_sids c.ch_store.Sd.r_sid ()
                          end)
                        chains;
                      (* discharge: privatisable regions *)
                      let blocked_regions =
                        List.sort_uniq compare
                          (List.map
                             (fun ((s : Sd.resolved), _) -> s.Sd.r_region)
                             !blocking)
                      in
                      let private_regions =
                        List.filter
                          (fun r ->
                            let accs_r =
                              List.filter
                                (fun (a : Sd.resolved) -> a.Sd.r_region = r)
                                under
                            in
                            privatisable k accs_r)
                          blocked_regions
                      in
                      let discharged (s : Sd.resolved) (d : Sd.resolved) =
                        List.mem s.Sd.r_region private_regions
                        || (Hashtbl.mem chain_sids s.Sd.r_sid
                           && Hashtbl.mem chain_sids d.Sd.r_sid)
                      in
                      let races =
                        List.filter
                          (fun (s, d) -> not (discharged s d))
                          !blocking
                      in
                      if races = [] then begin
                        let reductions =
                          List.sort compare
                            (Hashtbl.fold
                               (fun sid () acc -> sid :: acc)
                               chain_sids [])
                        in
                        (* only report coverage actually discharging
                           a blocked pair *)
                        let used_private =
                          List.filter
                            (fun r ->
                              List.exists
                                (fun ((s : Sd.resolved), _) ->
                                  s.Sd.r_region = r)
                                !blocking)
                            private_regions
                        in
                        Certified
                          { ct_level = k;
                            ct_pairs = !pairs;
                            ct_private = used_private;
                            ct_reductions = reductions }
                      end
                      else begin
                        (* one witness per unordered access pair *)
                        let seen = Hashtbl.create 8 in
                        let ws =
                          List.filter_map
                            (fun ((s : Sd.resolved), (d : Sd.resolved)) ->
                              let key =
                                ( min s.Sd.r_sid d.Sd.r_sid,
                                  max s.Sd.r_sid d.Sd.r_sid )
                              in
                              if Hashtbl.mem seen key then None
                              else begin
                                Hashtbl.replace seen key ();
                                Some (witness_of k s d)
                              end)
                            (List.rev races)
                        in
                        Race
                          (List.sort
                             (fun a b ->
                               compare (a.w_src, a.w_dst) (b.w_src, b.w_dst))
                             ws)
                      end
                    end
                  end))
  end

let certify_loc (sd : Sd.t) ?fid loc =
  let prog = sd.Sd.prog in
  let found = ref None in
  Hashtbl.iter
    (fun _ (r : Sd.resolved) ->
      Array.iter
        (fun (f, h) ->
          if !found = None && (fid = None || fid = Some f) then
            match Vm.Prog.loc_of_block prog ~fid:f ~bid:h with
            | Some l when Vm.Hir_rewrite.same_loc l loc -> found := Some (f, h)
            | _ -> ())
        r.Sd.r_dims)
    sd.Sd.resolved;
  match !found with
  | Some (f, h) -> certify sd ~fid:f ~header:h
  | None -> Unknown "claimed loop is not a chain dimension of the static model"

let analyse ?sd prog =
  Obs.Span.with_ ~cat:"analysis" "analysis.parcheck" @@ fun () ->
  let sd = match sd with Some sd -> sd | None -> Sd.analyse prog in
  let dims = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (r : Sd.resolved) ->
      Array.iteri (fun k fh -> Hashtbl.replace dims fh k) r.Sd.r_dims)
    sd.Sd.resolved;
  let reports =
    Hashtbl.fold
      (fun (fid, header) k acc ->
        { dr_fid = fid;
          dr_header = header;
          dr_loc = Vm.Prog.loc_of_block prog ~fid ~bid:header;
          dr_depth = k;
          dr_verdict = certify sd ~fid ~header }
        :: acc)
      dims []
    |> List.sort (fun a b ->
           compare (a.dr_fid, a.dr_depth, a.dr_header)
             (b.dr_fid, b.dr_depth, b.dr_header))
  in
  { pc_sd = sd; pc_dims = reports }

let coverage (sd : Sd.t) = function
  | Certified c ->
      let ranges =
        List.filter_map
          (fun r -> Points_to.region_range sd.Sd.pta r)
          c.ct_private
        |> List.map (fun (base, size) -> (base, base + size - 1))
      in
      (ranges, c.ct_reductions)
  | Race _ | Unknown _ -> ([], [])

let verdict_code = function
  | Certified _ -> "certified"
  | Race _ -> "race"
  | Unknown _ -> "unknown"

let n_certified t =
  List.length
    (List.filter
       (fun d -> match d.dr_verdict with Certified _ -> true | _ -> false)
       t.pc_dims)

let n_races t =
  List.length
    (List.filter
       (fun d -> match d.dr_verdict with Race _ -> true | _ -> false)
       t.pc_dims)

let pp_iv fmt = function
  | None -> ()
  | Some iv ->
      Format.fprintf fmt "(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int iv)))

let pp_verdict fmt = function
  | Certified c ->
      Format.fprintf fmt "DOALL (%d pairs" c.ct_pairs;
      if c.ct_private <> [] then
        Format.fprintf fmt ", %d private region(s)"
          (List.length c.ct_private);
      if c.ct_reductions <> [] then
        Format.fprintf fmt ", %d reduction access(es)"
          (List.length c.ct_reductions);
      Format.fprintf fmt ")"
  | Race ws ->
      Format.fprintf fmt "RACE";
      List.iteri
        (fun i w ->
          if i < 3 then
            Format.fprintf fmt "%s%s %a%a -> %a%a"
              (if i = 0 then " " else "; ")
              (if w.w_ww then "W/W" else "R/W")
              Vm.Isa.Sid.pp w.w_src pp_iv w.w_src_iv
              Vm.Isa.Sid.pp w.w_dst pp_iv w.w_dst_iv)
        ws;
      if List.length ws > 3 then
        Format.fprintf fmt "; +%d more" (List.length ws - 3)
  | Unknown why -> Format.fprintf fmt "unknown: %s" why

let pp fmt t =
  Format.fprintf fmt "@[<v>parallelism certifier: %d dim(s), %d certified, %d with races@,"
    (List.length t.pc_dims) (n_certified t) (n_races t);
  List.iter
    (fun d ->
      Format.fprintf fmt "  f%d.b%d%s depth %d: %a@,"
        d.dr_fid d.dr_header
        (match d.dr_loc with
        | Some l -> Printf.sprintf " (%s:%d)" l.Vm.Prog.file l.Vm.Prog.line
        | None -> "")
        d.dr_depth pp_verdict d.dr_verdict)
    t.pc_dims;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Dynamic cross-check: the race sanitizer as the certifier's oracle   *)
(* ------------------------------------------------------------------ *)

module RS = Ddg.Race_san

let claims t =
  List.map
    (fun d ->
      let priv, red = coverage t.pc_sd d.dr_verdict in
      let label =
        match d.dr_loc with
        | Some l ->
            Printf.sprintf "f%d.b%d (%s:%d)" d.dr_fid d.dr_header
              l.Vm.Prog.file l.Vm.Prog.line
        | None -> Printf.sprintf "f%d.b%d" d.dr_fid d.dr_header
      in
      { RS.cl_fid = d.dr_fid;
        cl_header = d.dr_header;
        cl_label = label;
        cl_certified =
          (match d.dr_verdict with Certified _ -> true | _ -> false);
        cl_private = priv;
        cl_reductions = red })
    t.pc_dims

let sanitize ?max_steps ?args t =
  Obs.Span.with_ ~cat:"profiling" "ddg.race_san" @@ fun () ->
  let prog = t.pc_sd.Sd.prog in
  let structure = Cfg.Cfg_builder.run prog in
  RS.run ?max_steps ?args prog ~structure ~claims:(claims t)

let crosscheck t (r : RS.report) =
  let verdict_of fid header =
    List.find_opt
      (fun d -> d.dr_fid = fid && d.dr_header = header)
      t.pc_dims
  in
  let diags =
    List.concat_map
      (fun (cs : RS.claim_stats) ->
        let cl = cs.RS.cs_claim in
        let fid = cl.RS.cl_fid in
        let n = cs.RS.cs_n_races in
        if cl.RS.cl_certified && n > 0 then
          [ Diag.error ~code:"E-parcheck-unsound" ~fid
              (Printf.sprintf
                 "sanitizer found %d race(s) on statically certified dim %s%s"
                 n cl.RS.cl_label
                 (match cs.RS.cs_races with
                 | rc :: _ ->
                     Format.asprintf " (first: %a)" RS.pp_race rc
                 | [] -> "")) ]
        else
          match verdict_of fid cl.RS.cl_header with
          | Some { dr_verdict = Race _; _ } ->
              if n > 0 then
                [ Diag.info ~code:"I-parcheck-confirmed" ~fid
                    (Printf.sprintf
                       "dynamic trace confirms the static race witness on %s (%d conflict(s))"
                       cl.RS.cl_label n) ]
              else
                [ Diag.info ~code:"I-parcheck-latent" ~fid
                    (Printf.sprintf
                       "static race witness on %s not exhibited by this input"
                       cl.RS.cl_label) ]
          | _ -> [])
      r.RS.sr_claims
  in
  List.sort Diag.compare diags

let crosscheck_ok diags = not (List.exists Diag.is_error diags)
