type report = {
  n_accesses : int;
  n_ranged : int;
  facts : int;
  checked_edges : int;
  skipped_edges : int;
  violations : Diag.t list;
}

let disjoint (lo1, hi1) (lo2, hi2) = hi1 < lo2 || hi2 < lo1

let check (prog : Vm.Prog.t) (res : Ddg.Depprof.result) =
  let frs = Affine_class.analyse_prog prog in
  (* sid -> ranged access (memory accesses only, by construction) *)
  let ranged : (Vm.Isa.Sid.t, Affine_class.access) Hashtbl.t =
    Hashtbl.create 64
  in
  let n_accesses = ref 0 in
  Array.iter
    (fun fr ->
      List.iter
        (fun (a : Affine_class.access) ->
          incr n_accesses;
          match a.acc_range with
          | Some _ -> Hashtbl.replace ranged a.acc_sid a
          | None -> ())
        fr.Affine_class.fr_accesses)
    frs;
  (* independence facts: disjoint pairs within a function, at least one
     of which writes (read/read pairs carry no dependence anyway) *)
  let facts = ref 0 in
  Array.iter
    (fun fr ->
      let accs =
        List.filter
          (fun (a : Affine_class.access) -> a.acc_range <> None)
          fr.Affine_class.fr_accesses
      in
      let rec pairs = function
        | [] -> ()
        | (a : Affine_class.access) :: rest ->
            List.iter
              (fun (b : Affine_class.access) ->
                if
                  (a.acc_store || b.acc_store)
                  && disjoint (Option.get a.acc_range) (Option.get b.acc_range)
                then incr facts)
              rest;
            pairs rest
      in
      pairs accs)
    frs;
  let checked = ref 0 and skipped = ref 0 and violations = ref [] in
  List.iter
    (fun (d : Ddg.Depprof.dep_info) ->
      match d.dk.kind with
      | Ddg.Depprof.Reg_dep -> ()
      | Ddg.Depprof.Mem_dep | Ddg.Depprof.Out_dep -> (
          match
            (Hashtbl.find_opt ranged d.dk.src_sid,
             Hashtbl.find_opt ranged d.dk.dst_sid)
          with
          | Some a, Some b ->
              incr checked;
              let ra = Option.get a.acc_range
              and rb = Option.get b.acc_range in
              if disjoint ra rb then
                violations :=
                  Diag.error ~sid:d.dk.dst_sid ~code:"E-crosscheck"
                    ~fid:(Vm.Isa.Sid.fid d.dk.dst_sid)
                    (Format.asprintf
                       "dynamic %s edge %a -> %a contradicts static \
                        independence: address ranges [%d, %d] and [%d, %d] \
                        are disjoint"
                       (match d.dk.kind with
                       | Ddg.Depprof.Out_dep -> "output-dep"
                       | _ -> "mem-dep")
                       Vm.Isa.Sid.pp d.dk.src_sid Vm.Isa.Sid.pp d.dk.dst_sid
                       (fst ra) (snd ra) (fst rb) (snd rb))
                  :: !violations
          | _ -> incr skipped))
    res.Ddg.Depprof.deps;
  {
    n_accesses = !n_accesses;
    n_ranged = Hashtbl.length ranged;
    facts = !facts;
    checked_edges = !checked;
    skipped_edges = !skipped;
    violations = List.sort Diag.compare !violations;
  }

let ok r = r.violations = []

let pp_report fmt r =
  Format.fprintf fmt
    "accesses %d (ranged %d), independence facts %d, edges checked \
     %d/%d, violations %d"
    r.n_accesses r.n_ranged r.facts r.checked_edges
    (r.checked_edges + r.skipped_edges)
    (List.length r.violations);
  List.iter
    (fun d -> Format.fprintf fmt "@\n  %a" (Diag.pp ()) d)
    r.violations
