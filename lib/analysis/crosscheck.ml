type report = {
  n_accesses : int;
  n_ranged : int;
  facts : int;
  checked_edges : int;
  skipped_edges : int;
  skip_norange : int;
  skip_crossfn : int;
  poly_pairs : int;
  poly_checked : int;
  sim_must : int;
  sim_may : int;
  sim_skipped : bool;
  sim_skip_reason : string option;
  sim_witnesses : int;
  violations : Diag.t list;
}

let disjoint (lo1, hi1) (lo2, hi2) = hi1 < lo2 || hi2 < lo1

(* last-writer simulation of the pruning plan, aggregated to
   (src, dst, kind) keys: the exact dependence set the plan predicts,
   compared below against the dynamic profile (must and may) *)
let simulate_keys (plan : Ddg.Depprof.static_plan) =
  let last = Array.make (max 1 plan.sp_mem_size) None in
  let keys = Hashtbl.create 64 in
  let counts = Hashtbl.create 64 in
  let bump sid =
    Hashtbl.replace counts sid
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts sid))
  in
  let coords = ref [] in
  let rec item (it : Ddg.Depprof.static_item) =
    match it with
    | Ddg.Depprof.Sloop { sl_base; sl_coefs; sl_body } ->
        let outer = Array.of_list (List.rev !coords) in
        let trip = Ddg.Depprof.loop_trip ~base:sl_base ~coefs:sl_coefs outer in
        for k = 0 to trip - 1 do
          coords := k :: !coords;
          List.iter item sl_body;
          coords := List.tl !coords
        done
    | Ddg.Depprof.Sacc sa ->
        bump sa.sa_sid;
        let addr = ref sa.sa_base in
        let rev = Array.of_list (List.rev !coords) in
        Array.iteri (fun i c -> addr := !addr + (sa.sa_coefs.(i) * c)) rev;
        if !addr >= 0 && !addr < Array.length last then
          if sa.sa_store then begin
            (match last.(!addr) with
            | Some src ->
                Hashtbl.replace keys (src, sa.sa_sid, Ddg.Depprof.Out_dep) ()
            | None -> ());
            last.(!addr) <- Some sa.sa_sid
          end
          else
            match last.(!addr) with
            | Some src ->
                Hashtbl.replace keys (src, sa.sa_sid, Ddg.Depprof.Mem_dep) ()
            | None -> ()
  in
  List.iter item plan.sp_items;
  (keys, counts)

let check (prog : Vm.Prog.t) (res : Ddg.Depprof.result) =
  let frs = Affine_class.analyse_prog prog in
  (* sid -> ranged access (memory accesses only, by construction) *)
  let ranged : (Vm.Isa.Sid.t, Affine_class.access) Hashtbl.t =
    Hashtbl.create 64
  in
  let n_accesses = ref 0 in
  Array.iter
    (fun fr ->
      List.iter
        (fun (a : Affine_class.access) ->
          incr n_accesses;
          match a.acc_range with
          | Some _ -> Hashtbl.replace ranged a.acc_sid a
          | None -> ())
        fr.Affine_class.fr_accesses)
    frs;
  (* independence facts: disjoint pairs within a function, at least one
     of which writes (read/read pairs carry no dependence anyway) *)
  let facts = ref 0 in
  Array.iter
    (fun fr ->
      let accs =
        List.filter
          (fun (a : Affine_class.access) -> a.acc_range <> None)
          fr.Affine_class.fr_accesses
      in
      let rec pairs = function
        | [] -> ()
        | (a : Affine_class.access) :: rest ->
            List.iter
              (fun (b : Affine_class.access) ->
                if
                  (a.acc_store || b.acc_store)
                  && disjoint (Option.get a.acc_range) (Option.get b.acc_range)
                then incr facts)
              rest;
            pairs rest
      in
      pairs accs)
    frs;
  (* exact polyhedral facts from the static dependence engine *)
  let sd = Statdep.analyse prog in
  let scev = Hashtbl.create 64 in
  let dyn_count = Hashtbl.create 64 in
  List.iter
    (fun (s : Ddg.Depprof.stmt_info) ->
      if s.is_scev then Hashtbl.replace scev s.sk.s_sid ();
      Hashtbl.replace dyn_count s.sk.s_sid
        (s.s_count
        + Option.value ~default:0 (Hashtbl.find_opt dyn_count s.sk.s_sid)))
    res.Ddg.Depprof.stmts;
  let sim_keys, sim_counts = simulate_keys sd.Statdep.plan in
  (* the simulation predicts dependences of a complete run; on a
     truncated or diverging profile the must/may comparison is
     meaningless, so it is skipped (and reported as skipped) *)
  let sim_skip_reason =
    if Hashtbl.length sd.Statdep.pruned = 0 then
      Some "nothing statically pruned"
    else if
      not
        (Hashtbl.fold
           (fun sid n ok -> ok && Hashtbl.find_opt dyn_count sid = Some n)
           sim_counts true)
    then Some "simulated execution counts diverge from the dynamic run"
    else None
  in
  let sim_applicable = sim_skip_reason = None in
  let checked = ref 0
  and skip_norange = ref 0
  and skip_crossfn = ref 0
  and poly_checked = ref 0
  and sim_may = ref 0
  and violations = ref [] in
  let flagged = Hashtbl.create 8 in
  let flag key diag =
    if not (Hashtbl.mem flagged key) then begin
      Hashtbl.replace flagged key ();
      violations := diag :: !violations
    end
  in
  let kind_name = function
    | Ddg.Depprof.Out_dep -> "output-dep"
    | _ -> "mem-dep"
  in
  List.iter
    (fun (d : Ddg.Depprof.dep_info) ->
      match d.dk.kind with
      | Ddg.Depprof.Reg_dep -> ()
      | (Ddg.Depprof.Mem_dep | Ddg.Depprof.Out_dep) as kind ->
          let key = (d.dk.src_sid, d.dk.dst_sid, kind) in
          (* 1. interval check (the original cross-checker) *)
          (match
             (Hashtbl.find_opt ranged d.dk.src_sid,
              Hashtbl.find_opt ranged d.dk.dst_sid)
           with
          | Some a, Some b ->
              incr checked;
              let ra = Option.get a.acc_range
              and rb = Option.get b.acc_range in
              if disjoint ra rb then
                flag key
                  (Diag.error ~sid:d.dk.dst_sid ~code:"E-crosscheck"
                     ~fid:(Vm.Isa.Sid.fid d.dk.dst_sid)
                     (Format.asprintf
                        "dynamic %s edge %a -> %a contradicts static \
                         independence: address ranges [%d, %d] and [%d, %d] \
                         are disjoint"
                        (kind_name kind) Vm.Isa.Sid.pp d.dk.src_sid
                        Vm.Isa.Sid.pp d.dk.dst_sid (fst ra) (snd ra) (fst rb)
                        (snd rb)))
          | sa, sb ->
              if sa = None || sb = None then
                if Vm.Isa.Sid.fid d.dk.src_sid <> Vm.Isa.Sid.fid d.dk.dst_sid
                then incr skip_crossfn
                else incr skip_norange);
          (* 2. exact polyhedral check: both endpoints resolved by the
             static engine *)
          (match
             (Hashtbl.find_opt sd.Statdep.resolved d.dk.src_sid,
              Hashtbl.find_opt sd.Statdep.resolved d.dk.dst_sid)
           with
          | Some rs, Some rd ->
              incr poly_checked;
              let verdict =
                if rs.Statdep.r_region <> rd.Statdep.r_region then
                  Some "the accesses touch provably disjoint memory regions"
                else
                  match
                    Statdep.pair_of sd ~src:d.dk.src_sid ~dst:d.dk.dst_sid
                      kind
                  with
                  | Some p when not p.Statdep.pd_possible ->
                      Some "every dependence polyhedron of the pair is empty"
                  | Some _ -> None
                  | None ->
                      (* same region but no summary: only store-source
                         pairs are summarised, so a load-source edge is
                         structurally impossible *)
                      Some "the static engine has no writer for this pair"
              in
              Option.iter
                (fun why ->
                  flag key
                    (Diag.error ~sid:d.dk.dst_sid ~code:"E-crosscheck-poly"
                       ~fid:(Vm.Isa.Sid.fid d.dk.dst_sid)
                       (Format.asprintf
                          "dynamic %s edge %a -> %a contradicts the static \
                           dependence polyhedra: %s"
                          (kind_name kind) Vm.Isa.Sid.pp d.dk.src_sid
                          Vm.Isa.Sid.pp d.dk.dst_sid why)))
                verdict
          | _ -> ());
          (* 3. may-direction simulation check: a dynamic edge between
             two pruned accesses must be predicted by the plan's
             last-writer simulation *)
          if
            sim_applicable
            && Hashtbl.mem sd.Statdep.pruned d.dk.src_sid
            && Hashtbl.mem sd.Statdep.pruned d.dk.dst_sid
          then begin
            incr sim_may;
            if not (Hashtbl.mem sim_keys key) then
              flag key
                (Diag.error ~sid:d.dk.dst_sid ~code:"E-crosscheck-sim"
                   ~fid:(Vm.Isa.Sid.fid d.dk.dst_sid)
                   (Format.asprintf
                      "dynamic %s edge %a -> %a is not produced by the \
                       static plan's last-writer simulation"
                      (kind_name kind) Vm.Isa.Sid.pp d.dk.src_sid
                      Vm.Isa.Sid.pp d.dk.dst_sid))
          end)
    res.Ddg.Depprof.deps;
  (* 4. must-direction: every simulated flow dependence between non-SCEV
     statements has to appear in the dynamic DDG (output deps are only
     recorded under [track_waw], so they get the may-direction only) *)
  let sim_must = ref 0 in
  if sim_applicable then begin
    let dyn_keys = Hashtbl.create 64 in
    List.iter
      (fun (d : Ddg.Depprof.dep_info) ->
        Hashtbl.replace dyn_keys (d.dk.src_sid, d.dk.dst_sid, d.dk.kind) ())
      res.Ddg.Depprof.deps;
    Hashtbl.iter
      (fun ((src, dst, kind) as key) () ->
        if
          kind = Ddg.Depprof.Mem_dep
          && (not (Hashtbl.mem scev src))
          && not (Hashtbl.mem scev dst)
        then begin
          incr sim_must;
          if not (Hashtbl.mem dyn_keys key) then
            flag key
              (Diag.error ~sid:dst ~code:"E-crosscheck-sim"
                 ~fid:(Vm.Isa.Sid.fid dst)
                 (Format.asprintf
                    "simulated mem-dep edge %a -> %a is missing from the \
                     dynamic DDG"
                    Vm.Isa.Sid.pp src Vm.Isa.Sid.pp dst))
        end)
      sim_keys
  end;
  {
    n_accesses = !n_accesses;
    n_ranged = Hashtbl.length ranged;
    facts = !facts;
    checked_edges = !checked;
    skipped_edges = !skip_norange + !skip_crossfn;
    skip_norange = !skip_norange;
    skip_crossfn = !skip_crossfn;
    poly_pairs = List.length sd.Statdep.pairs;
    poly_checked = !poly_checked;
    sim_must = !sim_must;
    sim_may = !sim_may;
    sim_skipped = not sim_applicable;
    sim_skip_reason;
    sim_witnesses = List.length sd.Statdep.plan.Ddg.Depprof.sp_witnesses;
    violations = List.sort Diag.compare !violations;
  }

let ok r = r.violations = []

let pp_report fmt r =
  Format.fprintf fmt
    "accesses %d (ranged %d), independence facts %d, edges checked \
     %d/%d (skipped %d: %d no-range, %d cross-function), violations %d"
    r.n_accesses r.n_ranged r.facts r.checked_edges
    (r.checked_edges + r.skipped_edges)
    r.skipped_edges r.skip_norange r.skip_crossfn
    (List.length r.violations);
  Format.fprintf fmt
    "@\n  polyhedral: %d pair summaries, %d edges checked exactly; \
     simulation: %s"
    r.poly_pairs r.poly_checked
    (match r.sim_skip_reason with
    | Some why -> Printf.sprintf "skipped (%s)" why
    | None ->
        Printf.sprintf "%d must-edges, %d may-edges verified" r.sim_must
          r.sim_may);
  if r.sim_witnesses > 0 then
    Format.fprintf fmt "@\n  witnesses in plan: %d" r.sim_witnesses;
  List.iter
    (fun d -> Format.fprintf fmt "@\n  %a" (Diag.pp ()) d)
    r.violations
