module Rat = Pp_util.Rat

type result = Opt of Rat.t | Unbounded | Infeasible

(* Dictionary-based primal simplex (Chvatal).  Variables are indexed
   globally; [basis.(i)] is the variable defined by row [i]:

     basis.(i) = bval.(i) - sum_j a.(i).(j) * nonbasis.(j)
     z         = obj0     + sum_j obj.(j)   * nonbasis.(j)

   All variables are >= 0.  Bland's smallest-index rule guarantees
   termination. *)
type dict = {
  mutable basis : int array;
  mutable nonbasis : int array;
  a : Rat.t array array;  (* m x n *)
  bval : Rat.t array;  (* m *)
  obj : Rat.t array;  (* n *)
  mutable obj0 : Rat.t;
}

let pivot d ~row ~col =
  let m = Array.length d.bval and n = Array.length d.obj in
  let piv = d.a.(row).(col) in
  assert (not (Rat.is_zero piv));
  (* solve row for the entering variable *)
  let inv = Rat.inv piv in
  d.bval.(row) <- Rat.mul d.bval.(row) inv;
  for j = 0 to n - 1 do
    d.a.(row).(j) <- Rat.mul d.a.(row).(j) inv
  done;
  (* the leaving variable takes the entering variable's column slot *)
  let leaving = d.basis.(row) and entering = d.nonbasis.(col) in
  d.a.(row).(col) <- inv;
  (* substitute into the other rows *)
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = d.a.(i).(col) in
      if not (Rat.is_zero f) then begin
        d.bval.(i) <- Rat.sub d.bval.(i) (Rat.mul f d.bval.(row));
        for j = 0 to n - 1 do
          if j <> col then
            d.a.(i).(j) <- Rat.sub d.a.(i).(j) (Rat.mul f d.a.(row).(j))
        done;
        d.a.(i).(col) <- Rat.neg (Rat.mul f d.a.(row).(col))
      end
    end
  done;
  (* and into the objective *)
  let f = d.obj.(col) in
  if not (Rat.is_zero f) then begin
    d.obj0 <- Rat.add d.obj0 (Rat.mul f d.bval.(row));
    for j = 0 to n - 1 do
      if j <> col then
        d.obj.(j) <- Rat.sub d.obj.(j) (Rat.mul f d.a.(row).(j))
    done;
    d.obj.(col) <- Rat.neg (Rat.mul f d.a.(row).(col))
  end;
  d.basis.(row) <- entering;
  d.nonbasis.(col) <- leaving

(* One phase of the simplex on a feasible dictionary. *)
let optimize d =
  let m = Array.length d.bval and n = Array.length d.obj in
  let rec step () =
    (* Bland: entering = smallest-id nonbasic with positive reduced cost *)
    let enter = ref (-1) in
    for j = n - 1 downto 0 do
      if Rat.sign d.obj.(j) > 0 then
        if !enter = -1 || d.nonbasis.(j) < d.nonbasis.(!enter) then enter := j
    done;
    if !enter = -1 then `Optimal
    else begin
      let col = !enter in
      (* leaving: min ratio bval/a over rows with positive coefficient *)
      let leave = ref (-1) in
      let best = ref Rat.zero in
      for i = 0 to m - 1 do
        let coef = d.a.(i).(col) in
        if Rat.sign coef > 0 then begin
          let ratio = Rat.div d.bval.(i) coef in
          let better =
            !leave = -1
            || Rat.compare ratio !best < 0
            || (Rat.equal ratio !best && d.basis.(i) < d.basis.(!leave))
          in
          if better then begin
            leave := i;
            best := ratio
          end
        end
      done;
      if !leave = -1 then `Unbounded
      else begin
        pivot d ~row:!leave ~col;
        step ()
      end
    end
  in
  step ()

(* Build the nonneg-variable system from a polyhedron and an objective:
   every free dimension x_k becomes u_k - w_k with u, w >= 0. *)
let build (p : Polyhedron.t) (objective : Affine.t) =
  let dim = Polyhedron.dim p in
  assert (Affine.dim objective = dim);
  let cons =
    List.concat_map
      (fun (c : Constr.t) ->
        (* v.x + cst >= 0  <=>  -v.x <= cst ; equalities give both rows *)
        match c.Constr.kind with
        | Constr.Ge -> [ (Array.map (fun x -> -x) c.Constr.v, c.Constr.c) ]
        | Constr.Eq ->
            [ (Array.map (fun x -> -x) c.Constr.v, c.Constr.c);
              (Array.copy c.Constr.v, -c.Constr.c) ])
      (Polyhedron.constraints p)
  in
  let m = List.length cons in
  let n = 2 * dim in
  let a = Array.make_matrix m n Rat.zero in
  let bval = Array.make m Rat.zero in
  List.iteri
    (fun i (row, rhs) ->
      bval.(i) <- Rat.of_int rhs;
      Array.iteri
        (fun k v ->
          a.(i).(k) <- Rat.of_int v;
          a.(i).(dim + k) <- Rat.of_int (-v))
        row)
    cons;
  let obj = Array.make n Rat.zero in
  Array.iteri
    (fun k c ->
      obj.(k) <- c;
      obj.(dim + k) <- Rat.neg c)
    objective.Affine.coeffs;
  (* variable ids: 0..n-1 = structural, n..n+m-1 = slacks *)
  { basis = Array.init m (fun i -> n + i);
    nonbasis = Array.init n (fun j -> j);
    a;
    bval;
    obj;
    obj0 = objective.Affine.const }

(* Phase 1: make the dictionary feasible with an auxiliary variable. *)
let make_feasible d =
  let m = Array.length d.bval and n = Array.length d.obj in
  let worst = ref (-1) in
  for i = 0 to m - 1 do
    if
      Rat.sign d.bval.(i) < 0
      && (!worst = -1 || Rat.compare d.bval.(i) d.bval.(!worst) < 0)
    then worst := i
  done;
  if !worst = -1 then true (* already feasible *)
  else begin
    (* auxiliary dictionary: add x0 (id max_int) with column -1
       everywhere; objective becomes -x0 *)
    let aux_col = n in
    let a' = Array.map (fun row -> Array.append row [| Rat.minus_one |]) d.a in
    let obj' = Array.append (Array.map (fun _ -> Rat.zero) d.obj) [| Rat.minus_one |] in
    let d' =
      { basis = Array.copy d.basis;
        nonbasis = Array.append (Array.copy d.nonbasis) [| max_int |];
        a = a';
        bval = Array.copy d.bval;
        obj = obj';
        obj0 = Rat.zero }
    in
    pivot d' ~row:!worst ~col:aux_col;
    (match optimize d' with `Optimal | `Unbounded -> ());
    if not (Rat.is_zero d'.obj0) then false (* optimum of -x0 below 0 *)
    else begin
      (* if x0 is still basic (degenerate), pivot it out *)
      (match
         Array.to_seq d'.basis
         |> Seq.mapi (fun i v -> (i, v))
         |> Seq.find (fun (_, v) -> v = max_int)
       with
      | Some (row, _) ->
          let col = ref (-1) in
          Array.iteri
            (fun j _ ->
              if !col = -1 && d'.nonbasis.(j) <> max_int
                 && not (Rat.is_zero d'.a.(row).(j))
              then col := j)
            d'.nonbasis;
          if !col >= 0 then pivot d' ~row ~col:!col
      | None -> ());
      (* copy back, dropping x0's column *)
      let keep = ref [] in
      Array.iteri
        (fun j v -> if v <> max_int then keep := (j, v) :: !keep)
        d'.nonbasis;
      let keep = Array.of_list (List.rev !keep) in
      Array.iteri (fun jj (j, v) ->
          d.nonbasis.(jj) <- v;
          Array.iteri (fun i _ -> d.a.(i).(jj) <- d'.a.(i).(j)) d.bval)
        keep;
      Array.blit d'.basis 0 d.basis 0 (Array.length d.basis);
      Array.blit d'.bval 0 d.bval 0 (Array.length d.bval);
      (* re-express the original objective over the new nonbasis: the
         original objective is linear in the structural variables; build
         it from scratch by substituting basic rows *)
      true
    end
  end

(* Express an objective (over variable ids) in the current dictionary. *)
let set_objective d (coef_of_var : int -> Rat.t) const =
  let m = Array.length d.bval and n = Array.length d.obj in
  Array.fill d.obj 0 n Rat.zero;
  d.obj0 <- const;
  (* nonbasic structural variables contribute directly *)
  Array.iteri
    (fun j v ->
      let c = coef_of_var v in
      if not (Rat.is_zero c) then d.obj.(j) <- Rat.add d.obj.(j) c)
    d.nonbasis;
  (* basic ones substitute their row *)
  for i = 0 to m - 1 do
    let c = coef_of_var d.basis.(i) in
    if not (Rat.is_zero c) then begin
      d.obj0 <- Rat.add d.obj0 (Rat.mul c d.bval.(i));
      for j = 0 to n - 1 do
        d.obj.(j) <- Rat.sub d.obj.(j) (Rat.mul c d.a.(i).(j))
      done
    end
  done

let maximize p objective =
  let dim = Polyhedron.dim p in
  let d = build p objective in
  if not (make_feasible d) then Infeasible
  else begin
    let coef_of_var v =
      if v < dim then objective.Affine.coeffs.(v)
      else if v < 2 * dim then Rat.neg objective.Affine.coeffs.(v - dim)
      else Rat.zero
    in
    set_objective d coef_of_var objective.Affine.const;
    match optimize d with `Optimal -> Opt d.obj0 | `Unbounded -> Unbounded
  end

let minimize p objective =
  match maximize p (Affine.neg objective) with
  | Opt v -> Opt (Rat.neg v)
  | (Unbounded | Infeasible) as r -> r

let bounds p objective =
  let lo =
    match minimize p objective with
    | Opt v -> Some v
    | Unbounded -> None
    | Infeasible -> invalid_arg "Lp.bounds: empty polyhedron"
  in
  let hi =
    match maximize p objective with
    | Opt v -> Some v
    | Unbounded -> None
    | Infeasible -> invalid_arg "Lp.bounds: empty polyhedron"
  in
  (lo, hi)

let feasible p =
  match maximize p (Affine.const ~dim:(Polyhedron.dim p) Rat.zero) with
  | Opt _ -> true
  | Unbounded -> true
  | Infeasible -> false
