(** Exact rational linear programming (two-phase primal simplex with
    Bland's rule, so termination is guaranteed).

    Used as the exact optimisation engine for {!Polyhedron.bounds} in
    dimensions where Fourier–Motzkin elimination would blow up; interval
    propagation remains as the cheap first attempt. *)

module Rat = Pp_util.Rat

type result =
  | Opt of Rat.t  (** finite optimum *)
  | Unbounded
  | Infeasible

val maximize : Polyhedron.t -> Affine.t -> result
(** Maximum of the affine objective over the (rational relaxation of
    the) polyhedron. *)

val minimize : Polyhedron.t -> Affine.t -> result

val bounds : Polyhedron.t -> Affine.t -> Rat.t option * Rat.t option
(** [(min, max)]; [None] on the unbounded side.
    @raise Invalid_argument if the polyhedron is empty (check
    emptiness first, or use {!maximize} which reports [Infeasible]). *)

val feasible : Polyhedron.t -> bool
(** Rational feasibility via phase 1 alone (a constant objective):
    exact emptiness of the rational relaxation, cheaper and more robust
    than eliminating down with {!Polyhedron.is_empty} in high
    dimension. *)
