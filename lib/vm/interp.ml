type callbacks = {
  on_control : Event.control -> unit;
  on_exec : Event.exec -> unit;
}

let no_instrumentation = { on_control = ignore; on_exec = ignore }

type stats = {
  dyn_instrs : int;
  dyn_mem_ops : int;
  dyn_fp_ops : int;
  max_depth : int;
}

exception Trap of string

type frame = {
  func : Prog.func;
  mutable regs : Event.value array;
  ret_dst : Isa.reg option;  (* register in the CALLER receiving the result *)
  ret_block : int;  (* block in the caller to resume at *)
}

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

let grow_regs frame r =
  let n = Array.length frame.regs in
  if r >= n then begin
    let bigger = Array.make (max (2 * n) (r + 1)) (Event.I 0) in
    Array.blit frame.regs 0 bigger 0 n;
    frame.regs <- bigger
  end

let get_reg frame r =
  grow_regs frame r;
  frame.regs.(r)

let set_reg frame r v =
  grow_regs frame r;
  frame.regs.(r) <- v

let operand frame = function
  | Isa.Reg r -> get_reg frame r
  | Isa.Imm i -> Event.I i

let as_int what = function
  | Event.I i -> i
  | Event.F _ -> trap "%s: expected integer, got float" what

let as_float what = function
  | Event.F f -> f
  | Event.I _ -> trap "%s: expected float, got integer" what

let int_bin op a b =
  match op with
  | Isa.Add -> a + b
  | Isa.Sub -> a - b
  | Isa.Mul -> a * b
  | Isa.Div -> if b = 0 then trap "division by zero" else a / b
  | Isa.Rem -> if b = 0 then trap "modulo by zero" else a mod b
  | Isa.And -> a land b
  | Isa.Or -> a lor b
  | Isa.Xor -> a lxor b
  | Isa.Shl -> a lsl b
  | Isa.Shr -> a asr b

let float_bin op a b =
  match op with
  | Isa.Fadd -> a +. b
  | Isa.Fsub -> a -. b
  | Isa.Fmul -> a *. b
  | Isa.Fdiv -> a /. b

let cmp_int op a b =
  let r =
    match op with
    | Isa.Ceq -> a = b
    | Isa.Cne -> a <> b
    | Isa.Clt -> a < b
    | Isa.Cle -> a <= b
    | Isa.Cgt -> a > b
    | Isa.Cge -> a >= b
  in
  if r then 1 else 0

let cmp_float op a b =
  let r =
    match op with
    | Isa.Ceq -> a = b
    | Isa.Cne -> a <> b
    | Isa.Clt -> a < b
    | Isa.Cle -> a <= b
    | Isa.Cgt -> a > b
    | Isa.Cge -> a >= b
  in
  if r then 1 else 0

let operand_regs = function Isa.Reg r -> [ r ] | Isa.Imm _ -> []

let run_internal ?(max_steps = 200_000_000) ?(callbacks = no_instrumentation)
    ?(args = []) (prog : Prog.t) =
  let memory : (int, Event.value) Hashtbl.t = Hashtbl.create 4096 in
  let steps = ref 0 in
  let dyn_instrs = ref 0 in
  let dyn_mem = ref 0 in
  let dyn_fp = ref 0 in
  let max_depth = ref 0 in
  let depth = ref 0 in
  let stack : frame list ref = ref [] in
  let mainf = prog.funcs.(prog.main) in
  let main_frame =
    { func = mainf; regs = Array.make 16 (Event.I 0); ret_dst = None; ret_block = -1 }
  in
  List.iteri (fun i a -> set_reg main_frame i (Event.I a)) args;
  stack := [ main_frame ];

  let exec_instr frame ~fid ~bid ~idx instr =
    incr dyn_instrs;
    let cls = Isa.class_of_instr instr in
    (match cls with
    | Isa.Mem_load | Isa.Mem_store -> incr dyn_mem
    | Isa.Fp_alu -> incr dyn_fp
    | Isa.Int_alu | Isa.Other_op -> ());
    let sid = Isa.Sid.make ~fid ~bid ~idx in
    let value = ref None
    and addr_read = ref None
    and addr_written = ref None
    and reads = ref []
    and writes = ref None in
    let setv r v =
      set_reg frame r v;
      value := Some v;
      writes := Some r
    in
    (match instr with
    | Isa.Const (r, i) -> setv r (Event.I i)
    | Isa.Fconst (r, f) -> setv r (Event.F f)
    | Isa.Mov (r, o) ->
        reads := operand_regs o;
        setv r (operand frame o)
    | Isa.Bin (op, r, a, b) ->
        reads := operand_regs a @ operand_regs b;
        let va = as_int "bin" (operand frame a)
        and vb = as_int "bin" (operand frame b) in
        setv r (Event.I (int_bin op va vb))
    | Isa.Fbin (op, r, a, b) ->
        reads := operand_regs a @ operand_regs b;
        let va = as_float "fbin" (operand frame a)
        and vb = as_float "fbin" (operand frame b) in
        setv r (Event.F (float_bin op va vb))
    | Isa.Cmp (op, r, a, b) ->
        reads := operand_regs a @ operand_regs b;
        let va = as_int "cmp" (operand frame a)
        and vb = as_int "cmp" (operand frame b) in
        setv r (Event.I (cmp_int op va vb))
    | Isa.Fcmp (op, r, a, b) ->
        reads := operand_regs a @ operand_regs b;
        let va = as_float "fcmp" (operand frame a)
        and vb = as_float "fcmp" (operand frame b) in
        setv r (Event.I (cmp_float op va vb))
    | Isa.Load (r, a) ->
        reads := operand_regs a;
        let addr = as_int "load" (operand frame a) in
        addr_read := Some addr;
        let v =
          match Hashtbl.find_opt memory addr with
          | Some v -> v
          | None -> Event.I 0
        in
        setv r v
    | Isa.Store (a, v) ->
        reads := operand_regs a @ operand_regs v;
        let addr = as_int "store" (operand frame a) in
        addr_written := Some addr;
        Hashtbl.replace memory addr (operand frame v)
    | Isa.Itof (r, o) ->
        reads := operand_regs o;
        setv r (Event.F (float_of_int (as_int "itof" (operand frame o))))
    | Isa.Ftoi (r, o) ->
        reads := operand_regs o;
        setv r (Event.I (int_of_float (as_float "ftoi" (operand frame o)))));
    callbacks.on_exec
      { Event.sid;
        cls;
        value = !value;
        addr_read = !addr_read;
        addr_written = !addr_written;
        reads = !reads;
        writes = !writes;
        depth = !depth }
  in

  (* Iterative dispatch loop: block transitions must not consume OCaml
     stack, a trace can contain hundreds of millions of them. *)
  let cur_frame = ref main_frame in
  let cur_bid = ref 0 in
  let running = ref true in
  while !running do
    incr steps;
    if !steps > max_steps then trap "step budget exceeded (%d)" max_steps;
    let frame = !cur_frame in
    let fid = frame.func.Prog.fid in
    let bid = !cur_bid in
    let b = frame.func.Prog.blocks.(bid) in
    Array.iteri (fun idx i -> exec_instr frame ~fid ~bid ~idx i) b.Prog.instrs;
    match b.Prog.term with
    | Isa.Jump dst ->
        callbacks.on_control (Event.Jump { fid; src = bid; dst });
        cur_bid := dst
    | Isa.Br (c, bthen, belse) ->
        let dst = if as_int "br" (operand frame c) <> 0 then bthen else belse in
        callbacks.on_control (Event.Jump { fid; src = bid; dst });
        cur_bid := dst
    | Isa.Call { dst; callee; args; cont } ->
        let cf = prog.funcs.(callee) in
        let nf =
          { func = cf;
            regs = Array.make (max 16 cf.Prog.n_params) (Event.I 0);
            ret_dst = dst;
            ret_block = cont }
        in
        List.iteri (fun i a -> set_reg nf i (operand frame a)) args;
        stack := nf :: !stack;
        incr depth;
        max_depth := max !max_depth !depth;
        callbacks.on_control
          (Event.Call { caller = fid; site = bid; callee; dst = 0 });
        cur_frame := nf;
        cur_bid := 0
    | Isa.Ret v -> (
        let retval = Option.map (operand frame) v in
        match !stack with
        | [] | [ _ ] -> trap "ret from main; use halt"
        | me :: (caller :: _ as rest) ->
            assert (me == frame);
            stack := rest;
            decr depth;
            (match (frame.ret_dst, retval) with
            | Some r, Some v -> set_reg caller r v
            | Some _, None -> trap "ret: caller expects a value"
            | None, _ -> ());
            callbacks.on_control
              (Event.Return
                 { callee = fid;
                   caller = caller.func.Prog.fid;
                   dst = frame.ret_block });
            cur_frame := caller;
            cur_bid := frame.ret_block)
    | Isa.Halt -> running := false
  done;
  ( { dyn_instrs = !dyn_instrs;
      dyn_mem_ops = !dyn_mem;
      dyn_fp_ops = !dyn_fp;
      max_depth = !max_depth },
    memory )

let obs_instrs = Obs.Metrics.counter ~help:"dynamic instructions interpreted" "vm.run.instrs"
let obs_mem_ops = Obs.Metrics.counter ~help:"dynamic memory operations" "vm.run.mem_ops"
let obs_runs = Obs.Metrics.counter ~help:"interpreter executions" "vm.run.count"
let obs_depth = Obs.Metrics.gauge ~help:"peak dynamic call depth" "vm.run.max_depth"

let record_run_stats stats =
  if Obs.Registry.enabled () then begin
    Obs.Metrics.add obs_runs 1;
    Obs.Metrics.add obs_instrs stats.dyn_instrs;
    Obs.Metrics.add obs_mem_ops stats.dyn_mem_ops;
    Obs.Metrics.set_max obs_depth stats.max_depth
  end

let run ?max_steps ?callbacks ?args prog =
  Obs.Span.with_ ~cat:"vm" "vm.interp.run" @@ fun () ->
  let stats = fst (run_internal ?max_steps ?callbacks ?args prog) in
  record_run_stats stats;
  stats

let run_with_memory ?max_steps ?callbacks ?args prog =
  let stats, memory = run_internal ?max_steps ?callbacks ?args prog in
  record_run_stats stats;
  (stats, fun addr -> Hashtbl.find_opt memory addr)

(* Like [run_with_memory] but exposes the whole final memory table, so a
   differential verifier can enumerate every written address (including
   stores that landed outside the declared globals). *)
let run_dump ?max_steps ?callbacks ?args prog =
  run_internal ?max_steps ?callbacks ?args prog
