(* Source-to-source rewriting of [Hir] loop nests: the structural
   primitives (interchange, strip-mine/tile, skew, fusion, distribution)
   behind the transformation-application engine ([lib/xform]).

   Loops are addressed by their source location ([floc]) — the same key
   the dynamic analysis reports — so a suggestion computed from a
   profile can be replayed onto the program it was profiled from.  Every
   primitive either returns the rewritten program or an [Error] with a
   human-readable reason; none of them silently change semantics:
   structural preconditions (perfect nesting, pure and invariant bounds,
   rectangularity where required) are checked before touching the tree,
   and anything the syntactic checks cannot guarantee is left to the
   differential verifier downstream. *)

exception Reject of string

let reject fmt = Format.kasprintf (fun s -> raise (Reject s)) fmt

let same_loc (a : Prog.loc) (b : Prog.loc) =
  a.Prog.file = b.Prog.file && a.Prog.line = b.Prog.line

let loc_matches floc loc =
  match floc with Some l -> same_loc l loc | None -> false

let loc_string (l : Prog.loc) = Printf.sprintf "%s:%d" l.Prog.file l.Prog.line

(* ------------------------------------------------------------------ *)
(* Expression and statement utilities                                  *)
(* ------------------------------------------------------------------ *)

let rec expr_vars acc (e : Hir.expr) =
  match e with
  | Hir.Var n -> n :: acc
  | Hir.Int _ | Hir.Flt _ | Hir.Base _ -> acc
  | Hir.Bin (_, a, b) | Hir.Fbin (_, a, b) | Hir.Cmp (_, a, b)
  | Hir.Fcmp (_, a, b) ->
      expr_vars (expr_vars acc a) b
  | Hir.Load a | Hir.Itof a | Hir.Ftoi a -> expr_vars acc a
  | Hir.Callf (_, args) -> List.fold_left expr_vars acc args

let expr_mentions name e = List.mem name (expr_vars [] e)

(* Re-evaluable without observable effects and invariant as long as the
   variables it mentions are: no memory reads, no calls. *)
let rec expr_pure (e : Hir.expr) =
  match e with
  | Hir.Int _ | Hir.Flt _ | Hir.Var _ | Hir.Base _ -> true
  | Hir.Bin (_, a, b) | Hir.Fbin (_, a, b) | Hir.Cmp (_, a, b)
  | Hir.Fcmp (_, a, b) ->
      expr_pure a && expr_pure b
  | Hir.Itof a | Hir.Ftoi a -> expr_pure a
  | Hir.Load _ | Hir.Callf _ -> false

(* Every name bound or read anywhere in a statement, for fresh-name
   generation.  HIR variables are function-scoped and mutable, so any
   textual occurrence counts. *)
let rec stmt_names acc (s : Hir.stmt) =
  match s with
  | Hir.Let (n, e) -> expr_vars (n :: acc) e
  | Hir.Store (a, v) -> expr_vars (expr_vars acc a) v
  | Hir.For fl ->
      let acc = expr_vars (expr_vars (fl.Hir.v :: acc) fl.Hir.lo) fl.Hir.hi in
      List.fold_left stmt_names acc fl.Hir.body
  | Hir.While { cond; wbody; wloc = _ } ->
      List.fold_left stmt_names (expr_vars acc cond) wbody
  | Hir.If (c, a, b) ->
      let acc = expr_vars acc c in
      List.fold_left stmt_names (List.fold_left stmt_names acc a) b
  | Hir.CallS (dst, _, args) ->
      let acc = match dst with Some d -> d :: acc | None -> acc in
      List.fold_left (fun acc e -> expr_vars acc e) acc args
  | Hir.Return e -> ( match e with Some e -> expr_vars acc e | None -> acc)
  | Hir.Break -> acc

let fun_names (f : Hir.fundef) =
  List.fold_left stmt_names f.Hir.params f.Hir.body

(* Generate names not clashing with anything in [used]; each call also
   reserves the returned name. *)
let fresh_namer used =
  let used = ref used in
  fun base ->
    let name =
      if not (List.mem base !used) then base
      else
        let rec go k =
          let cand = Printf.sprintf "%s%d" base k in
          if List.mem cand !used then go (k + 1) else cand
        in
        go 2
    in
    used := name :: !used;
    name

(* Rename every occurrence of variable [a] (reads and binds alike) to
   [b].  HIR has one flat mutable scope per function, so a consistent
   whole-subtree rename is semantics-preserving provided [b] is fresh in
   the function. *)
let rec rename_expr a b (e : Hir.expr) =
  match e with
  | Hir.Var n when n = a -> Hir.Var b
  | Hir.Int _ | Hir.Flt _ | Hir.Var _ | Hir.Base _ -> e
  | Hir.Bin (op, x, y) -> Hir.Bin (op, rename_expr a b x, rename_expr a b y)
  | Hir.Fbin (op, x, y) -> Hir.Fbin (op, rename_expr a b x, rename_expr a b y)
  | Hir.Cmp (op, x, y) -> Hir.Cmp (op, rename_expr a b x, rename_expr a b y)
  | Hir.Fcmp (op, x, y) -> Hir.Fcmp (op, rename_expr a b x, rename_expr a b y)
  | Hir.Load x -> Hir.Load (rename_expr a b x)
  | Hir.Itof x -> Hir.Itof (rename_expr a b x)
  | Hir.Ftoi x -> Hir.Ftoi (rename_expr a b x)
  | Hir.Callf (f, args) -> Hir.Callf (f, List.map (rename_expr a b) args)

let rec rename_stmt a b (s : Hir.stmt) =
  match s with
  | Hir.Let (n, e) ->
      Hir.Let ((if n = a then b else n), rename_expr a b e)
  | Hir.Store (x, v) -> Hir.Store (rename_expr a b x, rename_expr a b v)
  | Hir.For fl ->
      Hir.For
        { fl with
          Hir.v = (if fl.Hir.v = a then b else fl.Hir.v);
          lo = rename_expr a b fl.Hir.lo;
          hi = rename_expr a b fl.Hir.hi;
          body = List.map (rename_stmt a b) fl.Hir.body }
  | Hir.While { cond; wbody; wloc } ->
      Hir.While
        { cond = rename_expr a b cond;
          wbody = List.map (rename_stmt a b) wbody;
          wloc }
  | Hir.If (c, x, y) ->
      Hir.If
        ( rename_expr a b c,
          List.map (rename_stmt a b) x,
          List.map (rename_stmt a b) y )
  | Hir.CallS (dst, f, args) ->
      Hir.CallS
        ( (match dst with Some d when d = a -> Some b | d -> d),
          f,
          List.map (rename_expr a b) args )
  | Hir.Return e -> Hir.Return (Option.map (rename_expr a b) e)
  | Hir.Break -> Hir.Break

(* ------------------------------------------------------------------ *)
(* Locating loops                                                      *)
(* ------------------------------------------------------------------ *)

(* Apply [rw] to the first [For] whose header is at [loc]; [rw] returns
   the replacement statement list.  [None] when no loop matches. *)
let rewrite_in_stmts loc (rw : Hir.for_loop -> Hir.stmt list) stmts :
    Hir.stmt list option =
  let found = ref false in
  let rec go_stmts stmts = List.concat_map go_stmt stmts
  and go_stmt s =
    if !found then [ s ]
    else
      match s with
      | Hir.For fl when loc_matches fl.Hir.floc loc ->
          found := true;
          rw fl
      | Hir.For fl -> [ Hir.For { fl with Hir.body = go_stmts fl.Hir.body } ]
      | Hir.While { cond; wbody; wloc } ->
          [ Hir.While { cond; wbody = go_stmts wbody; wloc } ]
      | Hir.If (c, a, b) ->
          let a' = go_stmts a in
          let b' = go_stmts b in
          [ Hir.If (c, a', b') ]
      | (Hir.Let _ | Hir.Store _ | Hir.CallS _ | Hir.Return _ | Hir.Break) as s
        ->
          [ s ]
  in
  let stmts' = go_stmts stmts in
  if !found then Some stmts' else None

let rewrite_loop (p : Hir.program) loc rw : Hir.program option =
  let rec go = function
    | [] -> None
    | (f : Hir.fundef) :: rest -> (
        match rewrite_in_stmts loc rw f.Hir.body with
        | Some body -> Some ({ f with Hir.body } :: rest)
        | None -> Option.map (fun r -> f :: r) (go rest))
  in
  Option.map (fun funs -> { p with Hir.funs }) (go p.Hir.funs)

let rec stmts_contain_loop loc stmts =
  List.exists
    (fun s ->
      match s with
      | Hir.For fl ->
          loc_matches fl.Hir.floc loc || stmts_contain_loop loc fl.Hir.body
      | Hir.While { wbody; _ } -> stmts_contain_loop loc wbody
      | Hir.If (_, a, b) -> stmts_contain_loop loc a || stmts_contain_loop loc b
      | Hir.Let _ | Hir.Store _ | Hir.CallS _ | Hir.Return _ | Hir.Break ->
          false)
    stmts

let fun_of_loop (p : Hir.program) loc =
  List.find_opt (fun (f : Hir.fundef) -> stmts_contain_loop loc f.Hir.body)
    p.Hir.funs

let find_loop (p : Hir.program) loc =
  let res = ref None in
  let rec go stmts =
    List.iter
      (fun s ->
        if !res = None then
          match s with
          | Hir.For fl ->
              if loc_matches fl.Hir.floc loc then res := Some fl
              else go fl.Hir.body
          | Hir.While { wbody; _ } -> go wbody
          | Hir.If (_, a, b) ->
              go a;
              go b
          | Hir.Let _ | Hir.Store _ | Hir.CallS _ | Hir.Return _ | Hir.Break ->
            ())
      stmts
  in
  List.iter (fun (f : Hir.fundef) -> if !res = None then go f.Hir.body) p.Hir.funs;
  !res

(* The perfectly-nested chain of loops from [fl] (inclusive) down to the
   loop at [inner]: each intermediate loop body must consist of exactly
   one [For].  Outermost first. *)
let chain_to fl inner =
  let rec go fl acc =
    let acc = fl :: acc in
    if loc_matches fl.Hir.floc inner then List.rev acc
    else
      match fl.Hir.body with
      | [ Hir.For g ] -> go g acc
      | _ ->
          reject "loop%s is not perfectly nested around %s"
            (match fl.Hir.floc with
            | Some l -> " at " ^ loc_string l
            | None -> Printf.sprintf " on %s" fl.Hir.v)
            (loc_string inner)
  in
  go fl []

(* The perfectly-nested chain matching exactly the given header
   locations (outermost first). *)
let chain_along fl locs =
  match locs with
  | [] -> reject "empty loop band"
  | l0 :: rest ->
      if not (loc_matches fl.Hir.floc l0) then
        reject "expected a loop at %s" (loc_string l0);
      let rec go (fl : Hir.for_loop) = function
        | [] -> [ fl ]
        | next :: rest -> (
            match fl.Hir.body with
            | [ Hir.For g ] when loc_matches g.Hir.floc next -> fl :: go g rest
            | [ Hir.For g ] ->
                reject "expected loop %s inside %s, found %s" (loc_string next)
                  (match fl.Hir.floc with
                  | Some l -> loc_string l
                  | None -> fl.Hir.v)
                  (match g.Hir.floc with
                  | Some l -> loc_string l
                  | None -> "an unlocated loop")
            | _ ->
                reject "loop band at %s is not perfectly nested"
                  (loc_string l0))
      in
      go fl rest

(* Nest a list of headers (outermost first) around [innermost_body]. *)
let rec rebuild (headers : Hir.for_loop list) innermost_body =
  match headers with
  | [] -> innermost_body
  | h :: rest -> [ Hir.For { h with Hir.body = rebuild rest innermost_body } ]

let check_pure_bounds what (fl : Hir.for_loop) =
  if not (expr_pure fl.Hir.lo && expr_pure fl.Hir.hi) then
    reject "%s: bounds of loop on %s are not pure (memory read or call)" what
      fl.Hir.v

let header_name (fl : Hir.for_loop) =
  match fl.Hir.floc with Some l -> loc_string l | None -> fl.Hir.v

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let wrap f = try f () with Reject m -> Error m

(* Swap the headers of the loops at [outer] and [inner]; every loop
   strictly between them stays in place (a rotation of two positions of
   the permutation).  The nest from [outer] down to [inner] must be
   perfect and all bounds must be pure and invariant in the iterators
   that move. *)
let interchange (p : Hir.program) ~outer ~inner =
  wrap (fun () ->
      match
        rewrite_loop p outer (fun fl ->
            let chain = chain_to fl inner in
            (match chain with
            | [] | [ _ ] ->
                reject "interchange: %s and %s are not distinct nested loops"
                  (loc_string outer) (loc_string inner)
            | _ -> ());
            List.iter (check_pure_bounds "interchange") chain;
            let o = List.hd chain in
            let i = List.nth chain (List.length chain - 1) in
            let mids =
              List.filteri
                (fun k _ -> k > 0 && k < List.length chain - 1)
                chain
            in
            let mentions (fl : Hir.for_loop) names =
              List.exists
                (fun n -> expr_mentions n fl.Hir.lo || expr_mentions n fl.Hir.hi)
                names
            in
            let above_vars =
              o.Hir.v :: List.map (fun (m : Hir.for_loop) -> m.Hir.v) mids
            in
            if mentions i above_vars then
              reject
                "interchange: bounds of %s depend on an enclosing iterator \
                 (triangular nest)"
                (header_name i);
            if List.exists (fun m -> mentions m [ o.Hir.v; i.Hir.v ]) mids then
              reject
                "interchange: an intermediate loop's bounds depend on a \
                 swapped iterator";
            if mentions o (i.Hir.v :: List.map (fun (m : Hir.for_loop) -> m.Hir.v) mids)
            then
              reject "interchange: bounds of %s depend on an inner iterator"
                (header_name o);
            let inner_body = i.Hir.body in
            rebuild ((i :: mids) @ [ o ]) inner_body)
      with
      | Some p' -> Ok p'
      | None -> Error (Printf.sprintf "no loop at %s" (loc_string outer)))

(* Strip-mine every loop of the band (given by header locations,
   outermost first) with the same [size], hoisting the tile loops above
   the whole band: the classic rectangular tiling
     for iT in lo..hi step size*step
       iub = min (iT + size*step) hi     (materialised with an If)
       for i in iT..iub step step
   The band must be perfectly nested and rectangular (no bound may
   mention another band iterator), and bounds must be pure since they
   are re-evaluated. *)
let tile (p : Hir.program) ~band ~size =
  wrap (fun () ->
      if size < 1 then reject "tile: size must be >= 1 (got %d)" size;
      match band with
      | [] -> Error "tile: empty band"
      | l0 :: _ -> (
          let owner = fun_of_loop p l0 in
          let fresh =
            fresh_namer
              (match owner with Some f -> fun_names f | None -> [])
          in
          match
            rewrite_loop p l0 (fun fl ->
                let chain = chain_along fl band in
                List.iter (check_pure_bounds "tile") chain;
                let vars = List.map (fun (l : Hir.for_loop) -> l.Hir.v) chain in
                List.iter
                  (fun (l : Hir.for_loop) ->
                    let others = List.filter (fun v -> v <> l.Hir.v) vars in
                    if
                      List.exists
                        (fun v ->
                          expr_mentions v l.Hir.lo || expr_mentions v l.Hir.hi)
                        others
                    then
                      reject
                        "tile: band is not rectangular (bounds of %s mention \
                         another band iterator)"
                        (header_name l))
                  chain;
                let named =
                  List.map
                    (fun (l : Hir.for_loop) ->
                      (l, fresh (l.Hir.v ^ "__t"), fresh (l.Hir.v ^ "__ub")))
                    chain
                in
                let tile_headers =
                  List.map
                    (fun ((l : Hir.for_loop), tv, _) ->
                      { l with
                        Hir.v = tv;
                        step = size * l.Hir.step;
                        floc = None;
                        unroll = false;
                        body = [] })
                    named
                in
                (* iub = min(iT + size*step, hi), spelled with an If *)
                let guards =
                  List.concat_map
                    (fun ((l : Hir.for_loop), tv, ub) ->
                      [ Hir.Let
                          ( ub,
                            Hir.Bin
                              ( Isa.Add,
                                Hir.Var tv,
                                Hir.Int (size * l.Hir.step) ) );
                        Hir.If
                          ( Hir.Cmp (Isa.Cgt, Hir.Var ub, l.Hir.hi),
                            [ Hir.Let (ub, l.Hir.hi) ],
                            [] ) ])
                    named
                in
                let point_headers =
                  List.map
                    (fun ((l : Hir.for_loop), tv, ub) ->
                      { l with Hir.lo = Hir.Var tv; hi = Hir.Var ub })
                    named
                in
                let innermost_body =
                  (List.nth chain (List.length chain - 1)).Hir.body
                in
                let point_nest = rebuild point_headers innermost_body in
                rebuild tile_headers (guards @ point_nest))
          with
          | Some p' -> Ok p'
          | None -> Error (Printf.sprintf "no loop at %s" (loc_string l0))))

(* Wavefront skew: replace the loop at [inner] (anywhere inside the loop
   at [outer], not necessarily perfectly nested) by one iterating over
   i' = i + factor*o, recovering i at the top of the body.  Always a
   bijection on the iteration space, so semantics are preserved by
   construction; the payoff (permutability) is claimed by the schedule
   and re-checked downstream. *)
let skew (p : Hir.program) ~outer ~inner ~factor =
  wrap (fun () ->
      if factor < 0 then reject "skew: negative factor %d" factor;
      let owner = fun_of_loop p outer in
      let fresh =
        fresh_namer (match owner with Some f -> fun_names f | None -> [])
      in
      match
        rewrite_loop p outer (fun ofl ->
            let inner_result =
              rewrite_in_stmts inner
                (fun ifl ->
                  check_pure_bounds "skew" ifl;
                  let w = fresh (ifl.Hir.v ^ "__sk") in
                  let shift =
                    Hir.Bin (Isa.Mul, Hir.Int factor, Hir.Var ofl.Hir.v)
                  in
                  [ Hir.For
                      { ifl with
                        Hir.v = w;
                        lo = Hir.Bin (Isa.Add, ifl.Hir.lo, shift);
                        hi = Hir.Bin (Isa.Add, ifl.Hir.hi, shift);
                        body =
                          Hir.Let
                            ( ifl.Hir.v,
                              Hir.Bin (Isa.Sub, Hir.Var w, shift) )
                          :: ifl.Hir.body } ])
                ofl.Hir.body
            in
            match inner_result with
            | Some body -> [ Hir.For { ofl with Hir.body } ]
            | None ->
                reject "skew: no loop at %s inside %s" (loc_string inner)
                  (loc_string outer))
      with
      | Some p' -> Ok p'
      | None -> Error (Printf.sprintf "no loop at %s" (loc_string outer)))

(* Merge two adjacent loops with identical headers into one; the second
   body's iterator is renamed onto the first's.  Statement-level
   correctness (no value flows between the bodies within an iteration
   that the original ordering provided) is left to the differential
   verifier. *)
let fuse (p : Hir.program) ~first ~second =
  wrap (fun () ->
      let owner = fun_of_loop p first in
      let fresh =
        fresh_namer (match owner with Some f -> fun_names f | None -> [])
      in
      let found = ref false in
      let rec go_stmts stmts =
        if !found then stmts
        else
          match stmts with
          | Hir.For a :: Hir.For b :: rest
            when loc_matches a.Hir.floc first && loc_matches b.Hir.floc second
            ->
              found := true;
              check_pure_bounds "fuse" a;
              check_pure_bounds "fuse" b;
              if
                not
                  (a.Hir.lo = b.Hir.lo && a.Hir.hi = b.Hir.hi
                 && a.Hir.step = b.Hir.step)
              then
                reject "fuse: headers of %s and %s differ" (loc_string first)
                  (loc_string second);
              let body_b =
                if b.Hir.v = a.Hir.v then b.Hir.body
                else
                  (* go through a fresh intermediate so an existing use
                     of [a.v] in the second body keeps its meaning *)
                  let tmp = fresh (b.Hir.v ^ "__f") in
                  List.map (rename_stmt b.Hir.v tmp) b.Hir.body
                  |> List.map (rename_stmt tmp a.Hir.v)
              in
              Hir.For { a with Hir.body = a.Hir.body @ body_b } :: rest
          | s :: rest ->
              let s' = go_stmt s in
              if !found then s' :: rest else s' :: go_stmts rest
          | [] -> []
      and go_stmt s =
        match s with
        | Hir.For fl -> Hir.For { fl with Hir.body = go_stmts fl.Hir.body }
        | Hir.While { cond; wbody; wloc } ->
            Hir.While { cond; wbody = go_stmts wbody; wloc }
        | Hir.If (c, a, b) ->
            let a' = go_stmts a in
            let b' = go_stmts b in
            Hir.If (c, a', b')
        | Hir.Let _ | Hir.Store _ | Hir.CallS _ | Hir.Return _ | Hir.Break -> s
      in
      let funs =
        List.map
          (fun (f : Hir.fundef) ->
            if !found then f else { f with Hir.body = go_stmts f.Hir.body })
          p.Hir.funs
      in
      if !found then Ok { p with Hir.funs }
      else
        Error
          (Printf.sprintf "fuse: no adjacent loops at %s / %s"
             (loc_string first) (loc_string second)))

(* Split the loop at [loc] in two at statement index [at] (0 < at <
   body length): loop distribution.  The second copy keeps no source
   location so later passes do not confuse the twins. *)
let distribute (p : Hir.program) ~loc ~at =
  wrap (fun () ->
      match
        rewrite_loop p loc (fun fl ->
            let n = List.length fl.Hir.body in
            if at <= 0 || at >= n then
              reject "distribute: split index %d outside 1..%d" at (n - 1);
            check_pure_bounds "distribute" fl;
            let first = List.filteri (fun i _ -> i < at) fl.Hir.body in
            let rest = List.filteri (fun i _ -> i >= at) fl.Hir.body in
            [ Hir.For { fl with Hir.body = first };
              Hir.For { fl with Hir.body = rest; floc = None } ])
      with
      | Some p' -> Ok p'
      | None -> Error (Printf.sprintf "no loop at %s" (loc_string loc)))
