(** The MiniVM interpreter with a QEMU-plugin-style instrumentation
    interface: client callbacks observe every control transfer and every
    executed instruction. *)

type callbacks = {
  on_control : Event.control -> unit;
  on_exec : Event.exec -> unit;
}

val no_instrumentation : callbacks

type stats = {
  dyn_instrs : int;  (** executed non-terminator instructions *)
  dyn_mem_ops : int;
  dyn_fp_ops : int;
  max_depth : int;
}

exception Trap of string
(** Runtime error (division by zero, type confusion, step budget
    exceeded, ...). *)

val run :
  ?max_steps:int ->
  ?callbacks:callbacks ->
  ?args:int list ->
  Prog.t ->
  stats
(** Execute the program from its [main] function.  [args] are passed as
    [main]'s integer parameters.  Default step budget: 200 million. *)

val run_with_memory :
  ?max_steps:int ->
  ?callbacks:callbacks ->
  ?args:int list ->
  Prog.t ->
  stats * (int -> Event.value option)
(** Like {!run} but also returns a lookup function over the final memory
    state, for tests. *)

val run_dump :
  ?max_steps:int ->
  ?callbacks:callbacks ->
  ?args:int list ->
  Prog.t ->
  stats * (int, Event.value) Hashtbl.t
(** Like {!run_with_memory} but exposes the whole final memory table, so
    a differential verifier can enumerate every written address
    (including stores outside the declared globals). *)
