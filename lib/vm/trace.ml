type t = { events : Event.t array }

let obs_recorded_events = Obs.Metrics.counter ~help:"events captured by in-memory trace recording" "vm.trace.events"

let record ?max_steps ?args prog =
  Obs.Span.with_ ~cat:"vm" "vm.trace.record" @@ fun () ->
  let buf = ref [] in
  let n = ref 0 in
  let callbacks =
    { Interp.on_control =
        (fun c ->
          incr n;
          buf := Event.Control c :: !buf);
      on_exec =
        (fun e ->
          incr n;
          buf := Event.Exec e :: !buf) }
  in
  let stats = Interp.run ?max_steps ?args ~callbacks prog in
  let events = Array.make !n (Event.Control (Event.Jump { fid = 0; src = 0; dst = 0 })) in
  List.iteri (fun i e -> events.(!n - 1 - i) <- e) !buf;
  Obs.Metrics.add obs_recorded_events !n;
  ({ events }, stats)

let of_events events = { events }

let iter f t = Array.iter f t.events

let replay t (cb : Interp.callbacks) =
  Array.iter
    (function
      | Event.Control c -> cb.Interp.on_control c
      | Event.Exec e -> cb.Interp.on_exec e)
    t.events

let n_events t = Array.length t.events

let n_control t =
  Array.fold_left
    (fun acc e -> match e with Event.Control _ -> acc + 1 | Event.Exec _ -> acc)
    0 t.events

let n_exec t = n_events t - n_control t
