(** Recorded execution traces.

    The real POLY-PROF can work offline: the instrumentation emits a
    trace that later stages consume.  This module records the full event
    stream of a run into a compact in-memory buffer and replays it into
    any {!Interp.callbacks} consumer — so Instrumentation II can run
    without re-executing the program.

    Persistence lives in the [Stream] library ([Stream.Trace_file],
    [Stream.Sink]/[Stream.Source]): a versioned, CRC-framed,
    delta-compressed binary codec that streams traces to and from disk
    chunk-at-a-time.  The old in-module [Marshal] path is gone. *)

type t

val record : ?max_steps:int -> ?args:int list -> Prog.t -> t * Interp.stats
(** Execute the program once, recording every control and exec event. *)

val of_events : Event.t array -> t
(** Wrap an already-decoded event stream (used by the codec loader). *)

val iter : (Event.t -> unit) -> t -> unit
(** Visit every event in order (used by the codec saver). *)

val replay : t -> Interp.callbacks -> unit
(** Deliver the recorded events, in order, to the callbacks. *)

val n_events : t -> int
val n_control : t -> int
val n_exec : t -> int
