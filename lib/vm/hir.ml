type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Base of string
  | Bin of Isa.binop * expr * expr
  | Fbin of Isa.fbinop * expr * expr
  | Cmp of Isa.cmpop * expr * expr
  | Fcmp of Isa.cmpop * expr * expr
  | Load of expr
  | Itof of expr
  | Ftoi of expr
  | Callf of string * expr list

type stmt =
  | Let of string * expr
  | Store of expr * expr
  | For of for_loop
  | While of { cond : expr; wbody : stmt list; wloc : Prog.loc option }
  | If of expr * stmt list * stmt list
  | CallS of string option * string * expr list
  | Return of expr option
  | Break

and for_loop = {
  v : string;
  lo : expr;
  hi : expr;
  step : int;
  body : stmt list;
  floc : Prog.loc option;
  unroll : bool;
}

type fattr = May_alias

type fundef = {
  name : string;
  params : string list;
  body : stmt list;
  blacklisted : bool;
  attrs : fattr list;
}

type program = {
  funs : fundef list;
  arrays : (string * int) list;
  main : string;
}

let fundef ?(blacklisted = false) ?(attrs = []) name params body =
  { name; params; body; blacklisted; attrs }

let for_ ?loc ?(step = 1) ?(unroll = false) v lo hi body =
  For { v; lo; hi; step; body; floc = loc; unroll }

let while_ ?loc cond wbody = While { cond; wbody; wloc = loc }

let rec stmt_depth = function
  | For { body; _ } -> 1 + stmts_depth body
  | While { wbody; _ } -> 1 + stmts_depth wbody
  | If (_, a, b) -> max (stmts_depth a) (stmts_depth b)
  | Let _ | Store _ | CallS _ | Return _ | Break -> 0

and stmts_depth stmts = List.fold_left (fun acc s -> max acc (stmt_depth s)) 0 stmts

let loop_depth f = stmts_depth f.body

let max_loop_depth p =
  List.fold_left (fun acc f -> max acc (loop_depth f)) 0 p.funs

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

exception Lower_error of string

let err fmt = Format.kasprintf (fun s -> raise (Lower_error s)) fmt

type lenv = {
  fb : Prog.Builder.func_builder;
  vars : (string, Isa.reg) Hashtbl.t;
  fids : (string, int) Hashtbl.t;
  bases : (string, int) Hashtbl.t;
  mutable break_targets : int list;  (* exit blocks of enclosing loops *)
}

let reg_of_var env name =
  match Hashtbl.find_opt env.vars name with
  | Some r -> r
  | None ->
      let r = Prog.Builder.fresh_reg env.fb in
      Hashtbl.add env.vars name r;
      r

(* Compile an expression into [cur] (which may advance past calls);
   returns the operand holding the result. *)
let rec compile_expr env (cur : int ref) (e : expr) : Isa.operand =
  let emit i = Prog.Builder.emit env.fb !cur i in
  let into instr_of_reg =
    let r = Prog.Builder.fresh_reg env.fb in
    emit (instr_of_reg r);
    Isa.Reg r
  in
  match e with
  | Int n -> Isa.Imm n
  | Flt f -> into (fun r -> Isa.Fconst (r, f))
  | Var name -> (
      match Hashtbl.find_opt env.vars name with
      | Some r -> Isa.Reg r
      | None -> err "use of undefined variable %s" name)
  | Base name -> (
      match Hashtbl.find_opt env.bases name with
      | Some addr -> Isa.Imm addr
      | None -> err "unknown array %s" name)
  | Bin (op, a, b) ->
      let oa = compile_expr env cur a in
      let ob = compile_expr env cur b in
      into (fun r -> Isa.Bin (op, r, oa, ob))
  | Fbin (op, a, b) ->
      let oa = compile_expr env cur a in
      let ob = compile_expr env cur b in
      into (fun r -> Isa.Fbin (op, r, oa, ob))
  | Cmp (op, a, b) ->
      let oa = compile_expr env cur a in
      let ob = compile_expr env cur b in
      into (fun r -> Isa.Cmp (op, r, oa, ob))
  | Fcmp (op, a, b) ->
      let oa = compile_expr env cur a in
      let ob = compile_expr env cur b in
      into (fun r -> Isa.Fcmp (op, r, oa, ob))
  | Load a ->
      let oa = compile_expr env cur a in
      into (fun r -> Isa.Load (r, oa))
  | Itof a ->
      let oa = compile_expr env cur a in
      into (fun r -> Isa.Itof (r, oa))
  | Ftoi a ->
      let oa = compile_expr env cur a in
      into (fun r -> Isa.Ftoi (r, oa))
  | Callf (name, args) ->
      let oargs = List.map (compile_expr env cur) args in
      let callee =
        match Hashtbl.find_opt env.fids name with
        | Some fid -> fid
        | None -> err "call to unknown function %s" name
      in
      let r = Prog.Builder.fresh_reg env.fb in
      let cont = Prog.Builder.fresh_block env.fb in
      Prog.Builder.terminate env.fb !cur
        (Isa.Call { dst = Some r; callee; args = oargs; cont });
      cur := cont;
      Isa.Reg r

(* Substitute a variable by an integer constant (for full unrolling). *)
let rec subst_expr name value = function
  | Var n when n = name -> Int value
  | (Int _ | Flt _ | Var _ | Base _) as e -> e
  | Bin (op, a, b) -> Bin (op, subst_expr name value a, subst_expr name value b)
  | Fbin (op, a, b) -> Fbin (op, subst_expr name value a, subst_expr name value b)
  | Cmp (op, a, b) -> Cmp (op, subst_expr name value a, subst_expr name value b)
  | Fcmp (op, a, b) -> Fcmp (op, subst_expr name value a, subst_expr name value b)
  | Load a -> Load (subst_expr name value a)
  | Itof a -> Itof (subst_expr name value a)
  | Ftoi a -> Ftoi (subst_expr name value a)
  | Callf (f, args) -> Callf (f, List.map (subst_expr name value) args)

let rec subst_stmt name value = function
  | Let (n, e) -> Let (n, subst_expr name value e)
  | Store (a, v) -> Store (subst_expr name value a, subst_expr name value v)
  | For fl ->
      if fl.v = name then For fl  (* shadowed *)
      else
        For
          { fl with
            lo = subst_expr name value fl.lo;
            hi = subst_expr name value fl.hi;
            body = List.map (subst_stmt name value) fl.body }
  | While { cond; wbody; wloc } ->
      While
        { cond = subst_expr name value cond;
          wbody = List.map (subst_stmt name value) wbody;
          wloc }
  | If (c, a, b) ->
      If
        ( subst_expr name value c,
          List.map (subst_stmt name value) a,
          List.map (subst_stmt name value) b )
  | CallS (dst, f, args) -> CallS (dst, f, List.map (subst_expr name value) args)
  | Return e -> Return (Option.map (subst_expr name value) e)
  | Break -> Break

(* Compile statements into [cur].  Returns false if control cannot fall
   through (the block was terminated by return/break). *)
let rec compile_stmts env (cur : int ref) ~in_main stmts =
  match stmts with
  | [] -> true
  | s :: rest ->
      let falls = compile_stmt env cur ~in_main s in
      if falls then compile_stmts env cur ~in_main rest
      else begin
        (if rest <> [] then
           (* unreachable code after return/break: drop it *)
           ());
        false
      end

and compile_stmt env cur ~in_main = function
  | Let (name, e) ->
      let o = compile_expr env cur e in
      let r = reg_of_var env name in
      Prog.Builder.emit env.fb !cur (Isa.Mov (r, o));
      true
  | Store (a, v) ->
      let oa = compile_expr env cur a in
      let ov = compile_expr env cur v in
      Prog.Builder.emit env.fb !cur (Isa.Store (oa, ov));
      true
  | CallS (dst, name, args) ->
      let oargs = List.map (compile_expr env cur) args in
      let callee =
        match Hashtbl.find_opt env.fids name with
        | Some fid -> fid
        | None -> err "call to unknown function %s" name
      in
      let dst_reg = Option.map (reg_of_var env) dst in
      let cont = Prog.Builder.fresh_block env.fb in
      Prog.Builder.terminate env.fb !cur
        (Isa.Call { dst = dst_reg; callee; args = oargs; cont });
      cur := cont;
      true
  | Return e ->
      let o = Option.map (compile_expr env cur) e in
      if in_main then Prog.Builder.terminate env.fb !cur Isa.Halt
      else Prog.Builder.terminate env.fb !cur (Isa.Ret o);
      false
  | Break -> (
      match env.break_targets with
      | [] -> err "break outside of a loop"
      | target :: _ ->
          Prog.Builder.terminate env.fb !cur (Isa.Jump target);
          false)
  | If (c, then_s, else_s) ->
      let oc = compile_expr env cur c in
      let bthen = Prog.Builder.fresh_block env.fb in
      let belse = Prog.Builder.fresh_block env.fb in
      let bmerge = Prog.Builder.fresh_block env.fb in
      Prog.Builder.terminate env.fb !cur (Isa.Br (oc, bthen, belse));
      let ct = ref bthen in
      if compile_stmts env ct ~in_main then_s then
        Prog.Builder.terminate env.fb !ct (Isa.Jump bmerge);
      let ce = ref belse in
      if compile_stmts env ce ~in_main else_s then
        Prog.Builder.terminate env.fb !ce (Isa.Jump bmerge);
      cur := bmerge;
      true
  | While { cond; wbody; wloc } ->
      let header = Prog.Builder.fresh_block ?loc:wloc env.fb in
      let body = Prog.Builder.fresh_block env.fb in
      let exit_b = Prog.Builder.fresh_block env.fb in
      Prog.Builder.terminate env.fb !cur (Isa.Jump header);
      let ch = ref header in
      let oc = compile_expr env ch cond in
      Prog.Builder.terminate env.fb !ch (Isa.Br (oc, body, exit_b));
      env.break_targets <- exit_b :: env.break_targets;
      let cb = ref body in
      if compile_stmts env cb ~in_main wbody then
        Prog.Builder.terminate env.fb !cb (Isa.Jump header);
      env.break_targets <- List.tl env.break_targets;
      cur := exit_b;
      true
  | For { v; lo; hi; step; body; floc; unroll } when unroll -> (
      (* full unrolling: requires constant bounds *)
      match (lo, hi) with
      | Int l, Int h ->
          ignore floc;
          let k = ref l in
          let falls = ref true in
          while !falls && !k < h do
            let unrolled = List.map (subst_stmt v !k) body in
            falls := compile_stmts env cur ~in_main unrolled;
            k := !k + step
          done;
          !falls
      | _ -> err "unroll requires constant loop bounds (loop on %s)" v)
  | For { v; lo; hi; step; body; floc; unroll = _ } ->
      let olo = compile_expr env cur lo in
      let rv = reg_of_var env v in
      Prog.Builder.emit env.fb !cur (Isa.Mov (rv, olo));
      let header = Prog.Builder.fresh_block ?loc:floc env.fb in
      let bbody = Prog.Builder.fresh_block env.fb in
      let latch = Prog.Builder.fresh_block env.fb in
      let exit_b = Prog.Builder.fresh_block env.fb in
      Prog.Builder.terminate env.fb !cur (Isa.Jump header);
      let ch = ref header in
      let ohi = compile_expr env ch hi in
      let t = Prog.Builder.fresh_reg env.fb in
      Prog.Builder.emit env.fb !ch (Isa.Cmp (Isa.Clt, t, Isa.Reg rv, ohi));
      Prog.Builder.terminate env.fb !ch (Isa.Br (Isa.Reg t, bbody, exit_b));
      env.break_targets <- exit_b :: env.break_targets;
      let cb = ref bbody in
      if compile_stmts env cb ~in_main body then
        Prog.Builder.terminate env.fb !cb (Isa.Jump latch);
      env.break_targets <- List.tl env.break_targets;
      Prog.Builder.emit env.fb latch
        (Isa.Bin (Isa.Add, rv, Isa.Reg rv, Isa.Imm step));
      Prog.Builder.terminate env.fb latch (Isa.Jump header);
      cur := exit_b;
      true

let obs_lowered_funcs = Obs.Metrics.counter ~help:"functions lowered to bytecode" "vm.lower.funcs"
let obs_lowered_globals = Obs.Metrics.counter ~help:"global arrays allocated by lowering" "vm.lower.globals"

let lower (p : program) : Prog.t =
  Obs.Span.with_ ~cat:"vm" "hir.lower" @@ fun () ->
  Obs.Metrics.add obs_lowered_funcs (List.length p.funs);
  Obs.Metrics.add obs_lowered_globals (List.length p.arrays);
  let pb = Prog.Builder.create () in
  let bases = Hashtbl.create 16 in
  List.iter
    (fun (name, size) ->
      Hashtbl.add bases name (Prog.Builder.alloc_global pb name size))
    p.arrays;
  let fids = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let fid =
        Prog.Builder.declare_func ~blacklisted:f.blacklisted pb f.name
          ~n_params:(List.length f.params)
      in
      Hashtbl.add fids f.name fid)
    p.funs;
  List.iter
    (fun f ->
      let fb = Prog.Builder.define_func pb (Hashtbl.find fids f.name) in
      let env = { fb; vars = Hashtbl.create 16; fids; bases; break_targets = [] } in
      List.iteri (fun i param -> Hashtbl.add env.vars param i) f.params;
      let cur = ref 0 in
      let in_main = f.name = p.main in
      if compile_stmts env cur ~in_main f.body then
        if in_main then Prog.Builder.terminate env.fb !cur Isa.Halt
        else Prog.Builder.terminate env.fb !cur (Isa.Ret None);
      Prog.Builder.finish_func fb)
    p.funs;
  try Prog.Builder.finish pb ~main:p.main
  with Invalid_argument m -> err "%s" m

(* ------------------------------------------------------------------ *)
(* Pretty-printing: a C-like source listing                            *)
(* ------------------------------------------------------------------ *)

let binop_sym = function
  | Isa.Add -> "+" | Isa.Sub -> "-" | Isa.Mul -> "*" | Isa.Div -> "/"
  | Isa.Rem -> "%" | Isa.And -> "&" | Isa.Or -> "|" | Isa.Xor -> "^"
  | Isa.Shl -> "<<" | Isa.Shr -> ">>"

let fbinop_sym = function
  | Isa.Fadd -> "+." | Isa.Fsub -> "-." | Isa.Fmul -> "*." | Isa.Fdiv -> "/."

let cmpop_sym = function
  | Isa.Ceq -> "==" | Isa.Cne -> "!=" | Isa.Clt -> "<" | Isa.Cle -> "<="
  | Isa.Cgt -> ">" | Isa.Cge -> ">="

let rec pp_expr fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Flt x -> Format.fprintf fmt "%g" x
  | Var v -> Format.fprintf fmt "%s" v
  | Base a -> Format.fprintf fmt "&%s" a
  | Bin (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_sym op) pp_expr b
  | Fbin (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (fbinop_sym op) pp_expr b
  | Cmp (op, a, b) | Fcmp (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (cmpop_sym op) pp_expr b
  | Load (Bin (Isa.Add, Base a, idx)) -> Format.fprintf fmt "%s[%a]" a pp_expr idx
  | Load a -> Format.fprintf fmt "*(%a)" pp_expr a
  | Itof a -> Format.fprintf fmt "(float)%a" pp_expr a
  | Ftoi a -> Format.fprintf fmt "(int)%a" pp_expr a
  | Callf (f, args) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp_expr)
        args

let rec pp_stmt_indent indent fmt s =
  let pad = String.make indent ' ' in
  match s with
  | Let (v, e) -> Format.fprintf fmt "%s%s = %a;" pad v pp_expr e
  | Store (Bin (Isa.Add, Base a, idx), e) ->
      Format.fprintf fmt "%s%s[%a] = %a;" pad a pp_expr idx pp_expr e
  | Store (a, e) -> Format.fprintf fmt "%s*(%a) = %a;" pad pp_expr a pp_expr e
  | CallS (None, f, args) ->
      Format.fprintf fmt "%s%s(%a);" pad f
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_expr)
        args
  | CallS (Some v, f, args) ->
      Format.fprintf fmt "%s%s = %s(%a);" pad v f
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_expr)
        args
  | Return None -> Format.fprintf fmt "%sreturn;" pad
  | Return (Some e) -> Format.fprintf fmt "%sreturn %a;" pad pp_expr e
  | Break -> Format.fprintf fmt "%sbreak;" pad
  | If (c, a, []) ->
      Format.fprintf fmt "%sif %a {@
%a@
%s}" pad pp_expr c
        (pp_stmts_indent (indent + 2)) a pad
  | If (c, a, b) ->
      Format.fprintf fmt "%sif %a {@
%a@
%s} else {@
%a@
%s}" pad pp_expr c
        (pp_stmts_indent (indent + 2)) a pad
        (pp_stmts_indent (indent + 2)) b pad
  | While { cond; wbody; _ } ->
      Format.fprintf fmt "%swhile %a {@
%a@
%s}" pad pp_expr cond
        (pp_stmts_indent (indent + 2)) wbody pad
  | For { v; lo; hi; step; body; floc; unroll } ->
      Format.fprintf fmt "%sfor (%s = %a; %s < %a; %s += %d)%s%s {@
%a@
%s}"
        pad v pp_expr lo v pp_expr hi v step
        (if unroll then " /* unrolled */" else "")
        (match floc with
        | Some l -> Printf.sprintf " /* %s:%d */" l.Prog.file l.Prog.line
        | None -> "")
        (pp_stmts_indent (indent + 2))
        body pad

and pp_stmts_indent indent fmt stmts =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@
")
    (pp_stmt_indent indent) fmt stmts

let pp_stmt fmt s = pp_stmt_indent 0 fmt s

let pp_program fmt (p : program) =
  List.iter
    (fun (name, size) -> Format.fprintf fmt "float %s[%d];@
" name size)
    p.arrays;
  List.iter
    (fun f ->
      Format.fprintf fmt "@
%s%s(%s)%s {@
%a@
}@
"
        (if f.blacklisted then "/* library */ " else "")
        f.name
        (String.concat ", " f.params)
        (if List.mem May_alias f.attrs then " /* may-alias */" else "")
        (pp_stmts_indent 2) f.body)
    p.funs

module Dsl = struct
  let i n = Int n
  let f x = Flt x
  let v name = Var name
  let base name = Base name
  let ( +! ) a b = Bin (Isa.Add, a, b)
  let ( -! ) a b = Bin (Isa.Sub, a, b)
  let ( *! ) a b = Bin (Isa.Mul, a, b)
  let ( /! ) a b = Bin (Isa.Div, a, b)
  let ( %! ) a b = Bin (Isa.Rem, a, b)
  let ( <! ) a b = Cmp (Isa.Clt, a, b)
  let ( <=! ) a b = Cmp (Isa.Cle, a, b)
  let ( >! ) a b = Cmp (Isa.Cgt, a, b)
  let ( >=! ) a b = Cmp (Isa.Cge, a, b)
  let ( ==! ) a b = Cmp (Isa.Ceq, a, b)
  let ( <>! ) a b = Cmp (Isa.Cne, a, b)
  let ( +? ) a b = Fbin (Isa.Fadd, a, b)
  let ( -? ) a b = Fbin (Isa.Fsub, a, b)
  let ( *? ) a b = Fbin (Isa.Fmul, a, b)
  let ( /? ) a b = Fbin (Isa.Fdiv, a, b)
  let ( <? ) a b = Fcmp (Isa.Clt, a, b)
  let ( >? ) a b = Fcmp (Isa.Cgt, a, b)
  let load a = Load a
  let ( .%[] ) name idx = Load (Bin (Isa.Add, Base name, idx))
  let store name idx value = Store (Bin (Isa.Add, Base name, idx), value)
end
