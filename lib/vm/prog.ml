type loc = { file : string; line : int }

type block = {
  bid : int;
  instrs : Isa.instr array;
  term : Isa.terminator;
  block_loc : loc option;
}

type func = {
  fid : int;
  fname : string;
  n_params : int;
  blocks : block array;
  blacklisted : bool;
}

type t = {
  funcs : func array;
  main : int;
  globals : (string * int * int) list;
  mem_size : int;
}

let func_by_name t name =
  match Array.find_opt (fun f -> f.fname = name) t.funcs with
  | Some f -> f
  | None -> invalid_arg ("Prog.func_by_name: no function " ^ name)

let func_name t fid = t.funcs.(fid).fname
let block t ~fid ~bid = t.funcs.(fid).blocks.(bid)

let instr_at t sid =
  let b = block t ~fid:(Isa.Sid.fid sid) ~bid:(Isa.Sid.bid sid) in
  b.instrs.(Isa.Sid.idx sid)

let loc_of_block t ~fid ~bid = (block t ~fid ~bid).block_loc

let n_static_instrs t =
  Array.fold_left
    (fun acc f ->
      Array.fold_left (fun acc b -> acc + Array.length b.instrs + 1) acc f.blocks)
    0 t.funcs

(* ------------------------------------------------------------------ *)
(* Structural well-formedness                                          *)
(* ------------------------------------------------------------------ *)

type wf_error = { wf_fid : int; wf_bid : int; wf_msg : string }

let pp_wf_error fmt e =
  Format.fprintf fmt "f%d.b%d: %s" e.wf_fid e.wf_bid e.wf_msg

(* A cap on register indices: frames grow on demand, but an index this
   large in a *static* program is certainly a builder bug. *)
let max_reg_index = 4095

let wf_errors (t : t) =
  let errs = ref [] in
  let err ~fid ~bid fmt =
    Format.kasprintf
      (fun m -> errs := { wf_fid = fid; wf_bid = bid; wf_msg = m } :: !errs)
      fmt
  in
  let n_funcs = Array.length t.funcs in
  if t.main < 0 || t.main >= n_funcs then
    errs :=
      { wf_fid = t.main; wf_bid = -1; wf_msg = "main function id out of range" }
      :: !errs;
  Array.iteri
    (fun fid (f : func) ->
      let n_blocks = Array.length f.blocks in
      if f.fid <> fid then
        err ~fid ~bid:(-1) "function id field %d does not match index" f.fid;
      if n_blocks = 0 then err ~fid ~bid:(-1) "function has no entry block";
      let check_reg bid what r =
        if r < 0 || r > max_reg_index then
          err ~fid ~bid "%s names register r%d (outside 0..%d)" what r
            max_reg_index
      in
      let check_operand bid what = function
        | Isa.Reg r -> check_reg bid what r
        | Isa.Imm _ -> ()
      in
      let check_target bid what dst =
        if dst < 0 || dst >= n_blocks then
          err ~fid ~bid "%s targets block b%d (function has %d blocks)" what
            dst n_blocks
      in
      Array.iteri
        (fun bid (b : block) ->
          if b.bid <> bid then
            err ~fid ~bid "block id field %d does not match index" b.bid;
          Array.iteri
            (fun idx i ->
              let what =
                Format.asprintf "instruction %d (%a)" idx Isa.pp_instr i
              in
              match i with
              | Isa.Const (r, _) | Isa.Fconst (r, _) -> check_reg bid what r
              | Isa.Mov (r, o) | Isa.Load (r, o) | Isa.Itof (r, o)
              | Isa.Ftoi (r, o) ->
                  check_reg bid what r;
                  check_operand bid what o
              | Isa.Bin (_, r, a, b') | Isa.Fbin (_, r, a, b')
              | Isa.Cmp (_, r, a, b') | Isa.Fcmp (_, r, a, b') ->
                  check_reg bid what r;
                  check_operand bid what a;
                  check_operand bid what b'
              | Isa.Store (a, v) ->
                  check_operand bid what a;
                  check_operand bid what v)
            b.instrs;
          match b.term with
          | Isa.Jump dst -> check_target bid "jump" dst
          | Isa.Br (c, bthen, belse) ->
              check_operand bid "br condition" c;
              check_target bid "br (then)" bthen;
              check_target bid "br (else)" belse
          | Isa.Call { dst; callee; args; cont } ->
              (match dst with Some r -> check_reg bid "call dst" r | None -> ());
              List.iter (check_operand bid "call argument") args;
              check_target bid "call continuation" cont;
              if callee < 0 || callee >= n_funcs then
                err ~fid ~bid "call targets function f%d (program has %d)"
                  callee n_funcs
              else begin
                let g = t.funcs.(callee) in
                let n_args = List.length args in
                if n_args <> g.n_params then
                  err ~fid ~bid
                    "call to %s passes %d argument%s but it declares %d \
                     parameter%s"
                    g.fname n_args
                    (if n_args = 1 then "" else "s")
                    g.n_params
                    (if g.n_params = 1 then "" else "s")
              end
          | Isa.Ret v ->
              Option.iter (check_operand bid "ret value") v
          | Isa.Halt -> ())
        f.blocks)
    t.funcs;
  List.rev !errs

let validate t =
  match wf_errors t with
  | [] -> ()
  | errs ->
      invalid_arg
        (Format.asprintf "malformed MiniVM program:@\n%a"
           (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_wf_error)
           errs)

let pp fmt t =
  Array.iter
    (fun f ->
      Format.fprintf fmt "func %s (f%d, %d params)%s:@\n" f.fname f.fid
        f.n_params
        (if f.blacklisted then " [blacklisted]" else "");
      Array.iter
        (fun b ->
          Format.fprintf fmt "  b%d:%s@\n" b.bid
            (match b.block_loc with
            | Some l -> Printf.sprintf "   ; %s:%d" l.file l.line
            | None -> "");
          Array.iter (fun i -> Format.fprintf fmt "    %a@\n" Isa.pp_instr i) b.instrs;
          Format.fprintf fmt "    %a@\n" Isa.pp_terminator b.term)
        f.blocks)
    t.funcs

module Builder = struct
  type block_builder = {
    mutable instrs_rev : Isa.instr list;
    mutable term : Isa.terminator option;
    mutable loc : loc option;
  }

  type func_builder = {
    fb_fid : int;
    mutable next_reg : int;
    mutable blocks : block_builder array;
    mutable n_blocks : int;
    pb : prog_builder;
  }

  and prog_builder = {
    mutable fdecls : (string * int * bool) list;  (* name, n_params, blacklisted *)
    mutable fdefs : (int * func) list;
    mutable next_fid : int;
    mutable next_addr : int;
    mutable globals : (string * int * int) list;
  }

  let create () =
    { fdecls = []; fdefs = []; next_fid = 0; next_addr = 16; globals = [] }

  let alloc_global pb name size =
    let base = pb.next_addr in
    pb.next_addr <- pb.next_addr + size;
    pb.globals <- (name, base, size) :: pb.globals;
    base

  let declare_func ?(blacklisted = false) pb name ~n_params =
    let fid = pb.next_fid in
    pb.next_fid <- fid + 1;
    pb.fdecls <- (name, n_params, blacklisted) :: pb.fdecls;
    assert (List.length pb.fdecls = fid + 1);
    fid

  let new_block_builder () = { instrs_rev = []; term = None; loc = None }

  let define_func pb fid =
    let decl_params =
      let name, n, _ = List.nth (List.rev pb.fdecls) fid in
      ignore name;
      n
    in
    let fb =
      { fb_fid = fid;
        next_reg = decl_params;
        blocks = Array.init 8 (fun _ -> new_block_builder ());
        n_blocks = 1;
        pb }
    in
    fb

  let fresh_reg fb =
    let r = fb.next_reg in
    fb.next_reg <- r + 1;
    r

  let grow fb =
    if fb.n_blocks >= Array.length fb.blocks then begin
      let bigger = Array.init (2 * Array.length fb.blocks) (fun _ -> new_block_builder ()) in
      Array.blit fb.blocks 0 bigger 0 (Array.length fb.blocks);
      fb.blocks <- bigger
    end

  let fresh_block ?loc fb =
    grow fb;
    let bid = fb.n_blocks in
    fb.n_blocks <- bid + 1;
    (match loc with Some l -> fb.blocks.(bid).loc <- Some l | None -> ());
    bid

  let set_block_loc fb bid l = fb.blocks.(bid).loc <- Some l
  let emit fb bid i = fb.blocks.(bid).instrs_rev <- i :: fb.blocks.(bid).instrs_rev

  let terminate fb bid t =
    match fb.blocks.(bid).term with
    | Some _ -> invalid_arg "Builder.terminate: block already terminated"
    | None -> fb.blocks.(bid).term <- Some t

  let finish_func fb =
    let name, n_params, blacklisted = List.nth (List.rev fb.pb.fdecls) fb.fb_fid in
    let blocks =
      Array.init fb.n_blocks (fun bid ->
          let bb = fb.blocks.(bid) in
          let term =
            match bb.term with
            | Some t -> t
            | None ->
                invalid_arg
                  (Printf.sprintf "Builder.finish_func %s: block %d not terminated"
                     name bid)
          in
          { bid;
            instrs = Array.of_list (List.rev bb.instrs_rev);
            term;
            block_loc = bb.loc })
    in
    fb.pb.fdefs <-
      (fb.fb_fid, { fid = fb.fb_fid; fname = name; n_params; blocks; blacklisted })
      :: fb.pb.fdefs

  let finish pb ~main =
    let n = pb.next_fid in
    let funcs =
      Array.init n (fun fid ->
          match List.assoc_opt fid pb.fdefs with
          | Some f -> f
          | None ->
              let name, _, _ = List.nth (List.rev pb.fdecls) fid in
              invalid_arg ("Builder.finish: function not defined: " ^ name))
    in
    let t =
      { funcs;
        main = -1;
        globals = List.rev pb.globals;
        mem_size = pb.next_addr }
    in
    let mainf = func_by_name t main in
    let t = { t with main = mainf.fid } in
    validate t;
    t
end
