(** MiniVM programs: functions made of basic blocks, plus a tiny linker
    for global data (array base addresses in the flat memory). *)

type loc = { file : string; line : int }

type block = {
  bid : int;
  instrs : Isa.instr array;
  term : Isa.terminator;
  block_loc : loc option;
}

type func = {
  fid : int;
  fname : string;
  n_params : int;  (** parameters arrive in registers [0 .. n_params-1] *)
  blocks : block array;  (** indexed by block id; entry is block 0 *)
  blacklisted : bool;
      (** stands in for libc-like functions the user grays out (Fig. 7) *)
}

type t = {
  funcs : func array;  (** indexed by function id *)
  main : int;
  globals : (string * int * int) list;  (** name, base address, size (words) *)
  mem_size : int;  (** first free address after all globals *)
}

type wf_error = { wf_fid : int; wf_bid : int; wf_msg : string }
(** A structural well-formedness violation located at function [wf_fid],
    block [wf_bid] ([-1] for function-level problems). *)

val wf_errors : t -> wf_error list
(** Structural checks: block/function id fields consistent, jump/br/call
    targets in range, call arity matching the callee declaration,
    register indices sane.  (Block termination is enforced by the type:
    every [block] carries a terminator.) *)

val validate : t -> unit
(** @raise Invalid_argument with a descriptive multi-line message if
    {!wf_errors} is non-empty.  Called by [Builder.finish], so malformed
    programs are rejected before they reach the interpreter. *)

val pp_wf_error : Format.formatter -> wf_error -> unit

val max_reg_index : int
(** Largest register index the structural checks accept. *)

val func_by_name : t -> string -> func
val func_name : t -> int -> string
val block : t -> fid:int -> bid:int -> block
val instr_at : t -> Isa.Sid.t -> Isa.instr
val loc_of_block : t -> fid:int -> bid:int -> loc option
val n_static_instrs : t -> int
val pp : Format.formatter -> t -> unit

(** Imperative program builder. *)
module Builder : sig
  type prog_builder
  type func_builder

  val create : unit -> prog_builder

  val alloc_global : prog_builder -> string -> int -> int
  (** [alloc_global b name size] reserves [size] words and returns the
      base address. *)

  val declare_func :
    ?blacklisted:bool -> prog_builder -> string -> n_params:int -> int
  (** Declare a function (so mutually recursive calls can reference it)
      and get its id.  Its body is defined by a later [define_func]. *)

  val define_func : prog_builder -> int -> func_builder
  val fresh_reg : func_builder -> Isa.reg
  val fresh_block : ?loc:loc -> func_builder -> int
  (** Allocate an empty block and return its id.  Block 0 is the entry
      and is allocated implicitly on [define_func]. *)

  val set_block_loc : func_builder -> int -> loc -> unit
  val emit : func_builder -> int -> Isa.instr -> unit
  (** Append an instruction to the given block. *)

  val terminate : func_builder -> int -> Isa.terminator -> unit
  val finish_func : func_builder -> unit
  val finish : prog_builder -> main:string -> t
end
