module Prog_hash = Prog_hash

let version = "1.1.0"

type t = {
  prog : Vm.Prog.t;
  hir : Vm.Hir.program option;
  structure : Cfg.Cfg_builder.structure;
  profile : Ddg.Depprof.result;
  analysis : Sched.Depanalysis.t;
  feedback : Sched.Feedback.t;
}

let run_internal ?config ?max_steps ?args ~hir prog =
  Obs.Span.with_ ~cat:"pipeline" "pipeline.run" @@ fun () ->
  let structure =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.cfg" @@ fun () ->
    Cfg.Cfg_builder.run ?max_steps ?args prog
  in
  let profile =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.profile" @@ fun () ->
    Ddg.Depprof.profile ?config ?max_steps ?args prog ~structure
  in
  let analysis =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.depanalysis" @@ fun () ->
    Sched.Depanalysis.analyse prog profile
  in
  let feedback =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.feedback" @@ fun () ->
    Sched.Feedback.make prog profile analysis
  in
  { prog; hir; structure; profile; analysis; feedback }

let run ?config ?max_steps ?args prog =
  run_internal ?config ?max_steps ?args ~hir:None prog

let run_hir ?config ?max_steps ?args hir =
  let prog = Vm.Hir.lower hir in
  run_internal ?config ?max_steps ?args ~hir:(Some hir) prog

(* Out-of-core pipeline: both instrumentation stages replayed from a
   binary trace file, Instrumentation II sharded across domains. *)
let run_trace_file ?config ?domains ~path prog =
  Obs.Span.with_ ~cat:"pipeline" "pipeline.run_trace_file" @@ fun () ->
  let structure =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.cfg" @@ fun () ->
    let builder = Cfg.Cfg_builder.create prog in
    Stream.Source.with_file path (fun src ->
        Stream.Source.replay src (Cfg.Cfg_builder.callbacks builder));
    Cfg.Cfg_builder.finalize builder
  in
  let { Stream.Par_profile.result = profile; par_stats } =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.profile" @@ fun () ->
    Stream.Par_profile.profile_file ?config ?domains path prog ~structure
  in
  let analysis =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.depanalysis" @@ fun () ->
    Sched.Depanalysis.analyse prog profile
  in
  let feedback =
    Obs.Span.with_ ~cat:"pipeline" "pipeline.feedback" @@ fun () ->
    Sched.Feedback.make prog profile analysis
  in
  ({ prog; hir = None; structure; profile; analysis; feedback }, par_stats)

let metrics ?ld_src ?fusion_strategy ~name t =
  let ld_src =
    match ld_src with
    | Some d -> d
    | None -> (
        match t.hir with Some h -> Vm.Hir.max_loop_depth h | None -> 0)
  in
  Sched.Metrics.compute ~name ~ld_src ?fusion_strategy t.prog t.profile
    t.analysis

let ctx_name t c =
  let fname fid =
    if fid >= 0 && fid < Array.length t.prog.Vm.Prog.funcs then
      t.prog.Vm.Prog.funcs.(fid).Vm.Prog.fname
    else "f" ^ string_of_int fid
  in
  match c with
  | Ddg.Iiv.Cblock (f, b) -> Printf.sprintf "%s.b%d" (fname f) b
  | Ddg.Iiv.Cloop (f, l) -> Printf.sprintf "%s.L%d" (fname f) l
  | Ddg.Iiv.Ccomp c -> Printf.sprintf "rec%d" c

let flamegraph_svg ?width t =
  let annot = Report.Flamegraph.annot_of_analysis t.prog t.analysis in
  Report.Flamegraph.to_svg ?width ~annot ~name:(ctx_name t) t.profile.Ddg.Depprof.stree

let flamegraph_ascii ?width t =
  Report.Flamegraph.to_ascii ?width ~name:(ctx_name t) t.profile.Ddg.Depprof.stree

let render_feedback fmt t = Sched.Feedback.render fmt t.feedback
let n_dynamic_ops t = t.profile.Ddg.Depprof.run_stats.Vm.Interp.dyn_instrs

(* Apply the feedback's suggested schedules to the HIR source and verify
   each one differentially (Xform.Driver): the end-to-end oracle that
   the profiler, folder and scheduler are telling the truth. *)
let apply_and_verify ?eps ?max_steps ?max_plans ~name hir =
  Xform.Driver.apply_and_verify ?eps ?max_steps ?max_plans ~name hir

(* Close the PGO loop: walk the legal schedule space of the program with
   the verified beam search (Tune.Search) and report the best measured,
   differentially verified schedule. *)
let autotune ?config ~name hir = Tune.Search.run ?config ~name hir
