(** Canonical program hashing — the content-address of the service
    layer's result cache.

    Two submissions name the same cache entry exactly when their HIR
    sources print identically, their declared arrays and entry point
    agree, and the job kind and parameters match.  The digest is a pure
    OCaml SHA-256 (the container ships no crypto library), so keys are
    stable across daemon restarts and across machines. *)

val sha256_hex : string -> string
(** Lowercase 64-hex-char SHA-256 digest of a byte string. *)

val canonical_source : Vm.Hir.program -> string
(** Deterministic byte serialization of an HIR program: the pretty
    printed source plus the array table and entry point (both included
    explicitly so programs differing only in declarations hash apart). *)

val job_key :
  kind:string -> params:(string * string) list -> Vm.Hir.program -> string
(** Content address of one job: SHA-256 over a versioned envelope of
    the job [kind], the parameter list (sorted by name, so argument
    order cannot split the cache) and {!canonical_source}. *)
