(** POLY-PROF: end-to-end dynamic data-flow / dependence profiling for
    structured-transformation feedback (Gruber et al., PPoPP 2019).

    The pipeline mirrors the paper's Fig. 1:

    + {b Instrumentation I} — run the binary, record raw control events,
      reconstruct per-function CFGs, the call graph, loop-nesting forests
      (Havlak/Ramalingam) and the recursive-component-set
      ({!Cfg.Cfg_builder}).
    + {b Instrumentation II} — run again; generate loop events (Alg. 1/2),
      maintain dynamic interprocedural iteration vectors (Alg. 3), track
      dependences through shadow memory/registers, and stream statement
      domains, value/address labels and dependence relations into the
      folding collectors ({!Ddg.Depprof}).
    + {b Compact polyhedral DDG} — geometric folding with
      over-approximation and SCEV pruning ({!Fold}).
    + {b Polyhedral feedback} — dependence analysis, parallelism,
      permutable bands/tiling, interchange & skewing suggestions, fusion
      structure, PolyFeat metrics, flame graphs
      ({!Sched}, {!Report}). *)

module Prog_hash : module type of Prog_hash
(** Canonical program hashing (SHA-256 content addresses) — the cache
    key of the {!Serve} service layer. *)

val version : string
(** The binary/library version, also reported by [polyprof version] and
    the daemon's [/version] endpoint. *)

type t = {
  prog : Vm.Prog.t;
  hir : Vm.Hir.program option;  (** the "source", when lowered from HIR *)
  structure : Cfg.Cfg_builder.structure;
  profile : Ddg.Depprof.result;
  analysis : Sched.Depanalysis.t;
  feedback : Sched.Feedback.t;
}

val run :
  ?config:Ddg.Depprof.config ->
  ?max_steps:int ->
  ?args:int list ->
  Vm.Prog.t ->
  t
(** Run the whole pipeline on a MiniVM program. *)

val run_hir :
  ?config:Ddg.Depprof.config ->
  ?max_steps:int ->
  ?args:int list ->
  Vm.Hir.program ->
  t
(** Lower the HIR program and run the pipeline, keeping the HIR around
    as source for the static baseline and ld-src. *)

val run_trace_file :
  ?config:Ddg.Depprof.config ->
  ?domains:int ->
  path:string ->
  Vm.Prog.t ->
  t * Stream.Par_profile.stats
(** Out-of-core pipeline over a recorded binary trace (written by
    {!Stream.Trace_file.record_to_file}): Instrumentation I streams the
    file once; Instrumentation II is sharded across [domains] workers
    ({!Stream.Par_profile.profile_file}) and produces the same profile
    as {!run} of the same execution.  The trace must carry a stats
    trailer.
    @raise Stream.Error on a corrupt or truncated trace. *)

val metrics :
  ?ld_src:int -> ?fusion_strategy:Sched.Fusion.strategy -> name:string -> t
  -> Sched.Metrics.row

val ctx_name : t -> Ddg.Iiv.ctx_id -> string
(** Human-readable context-element names using function names. *)

val flamegraph_svg : ?width:int -> t -> string
val flamegraph_ascii : ?width:int -> t -> string
val render_feedback : Format.formatter -> t -> unit
val n_dynamic_ops : t -> int

val apply_and_verify :
  ?eps:float ->
  ?max_steps:int ->
  ?max_plans:int ->
  name:string ->
  Vm.Hir.program ->
  Xform.Driver.summary
(** Apply the feedback's suggested schedules to the HIR source and verify
    each one differentially (see {!Xform.Driver.apply_and_verify}): the
    end-to-end oracle that profiler, folder and scheduler agree with an
    actual execution of the transformed program. *)

val autotune :
  ?config:Tune.Search.config ->
  name:string ->
  Vm.Hir.program ->
  (Tune.Search.t, string) result
(** Close the PGO loop: beam search over the legal schedule space
    ({!Tune.Search.run}) — every candidate is gated by the profiled
    direction vectors, measured, and differentially verified. *)
