type outcome = {
  row : Sched.Metrics.row;
  polly : Staticbase.Polly_lite.verdict;
  pipeline : Polyprof.t option;
  dep_keys : int;
  sched_bailed : bool;
  lint : Analysis.Lint.entry option;
  xform : Xform.Driver.summary option;
}

let sched_budget = 1200

let run ?(budget = sched_budget) ?(crosscheck = false) ?(xverify = false)
    ?out_of_core ?(static_prune = false) (w : Workload.t) =
  Obs.Span.with_ ~cat:"workload" ("workload." ^ w.Workload.w_name) @@ fun () ->
  let prog = Vm.Hir.lower w.Workload.hir in
  let structure, profile =
    match out_of_core with
    | None ->
        let structure = Cfg.Cfg_builder.run prog in
        let result =
          if static_prune then
            (* hybrid driver: speculate on weakly-dynamic guards, with
               witness-failure fallback to full shadow tracking *)
            let _sd, result, _reruns =
              Analysis.Statdep.fallback_profile prog ~profile:(fun plan ->
                  Ddg.Depprof.profile ~static_prune:plan prog ~structure)
            in
            result
          else Ddg.Depprof.profile prog ~structure
        in
        (structure, result)
    | Some domains ->
        (* record once to disk, then replay both instrumentation stages
           from the file, Instrumentation II sharded across domains
           (static pruning is sequential-only: with a plan, record an
           address-elided trace and replay Instrumentation II in
           process instead) *)
        let path = Filename.temp_file "polyprof" ".trace" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        @@ fun () ->
        (* elision follows the *non-speculative* pruned set so the
           recorded trace stays valid across witness-failure reruns:
           speculative plans only ever prune a superset of it *)
        let stable_plan =
          if static_prune then
            Some (Analysis.Statdep.analyse prog).Analysis.Statdep.plan
          else None
        in
        let elide =
          Option.map
            (fun p sid -> Hashtbl.mem p.Ddg.Depprof.sp_resolved sid)
            stable_plan
        in
        let wi = Stream.Trace_file.record_to_file ?elide prog path in
        let builder = Cfg.Cfg_builder.create prog in
        Stream.Source.with_file path (fun src ->
            Stream.Source.replay src (Cfg.Cfg_builder.callbacks builder));
        let structure = Cfg.Cfg_builder.finalize builder in
        let result =
          if static_prune then
            let _sd, result, _reruns =
              Analysis.Statdep.fallback_profile prog ~profile:(fun p ->
                  Stream.Source.with_file path (fun src ->
                      Ddg.Depprof.profile_replay ~static_prune:p
                        ~feed:(fun cb -> Stream.Source.replay src cb)
                        ~run_stats:wi.Stream.Trace_file.wi_stats prog
                        ~structure))
            in
            result
          else
            let o =
              Stream.Par_profile.profile_file ~domains path prog ~structure
            in
            o.Stream.Par_profile.result
        in
        (structure, result)
  in
  let lint =
    if crosscheck then
      Some
        (Analysis.Lint.crosschecked
           (Analysis.Lint.analyse ~name:w.Workload.w_name prog)
           prog profile)
    else None
  in
  let dep_keys = List.length profile.Ddg.Depprof.deps in
  let polly =
    Staticbase.Polly_lite.analyse_function w.Workload.hir w.Workload.kernel_func
  in
  let ld_src = Workload.src_loop_depth w.Workload.hir in
  if w.Workload.expect_sched_failure || dep_keys > budget then begin
    (* the scheduling stage declares a blow-up; keep the columns the
       profiling stages can still provide, like the paper does for
       streamcluster *)
    let base =
      (* a restricted analysis (statements only, no dependence-driven
         scheduling) yields the profiling columns *)
      let analysis =
        Sched.Depanalysis.analyse prog
          { profile with Ddg.Depprof.deps = [] }
      in
      Sched.Metrics.compute ~name:w.Workload.w_name ~ld_src prog profile
        analysis
    in
    { row =
        Sched.Metrics.failed_row ~base_row:base ~name:w.Workload.w_name
          ~ops:profile.Ddg.Depprof.run_stats.Vm.Interp.dyn_instrs
          ~mem:profile.Ddg.Depprof.run_stats.Vm.Interp.dyn_mem_ops ();
      polly;
      pipeline = None;
      dep_keys;
      sched_bailed = true;
      lint;
      (* no feedback to apply when the scheduler bailed out *)
      xform = None }
  end
  else begin
    let analysis = Sched.Depanalysis.analyse prog profile in
    let feedback = Sched.Feedback.make prog profile analysis in
    let row =
      Sched.Metrics.compute ~name:w.Workload.w_name ~ld_src
        ~fusion_strategy:w.Workload.fusion prog profile analysis
    in
    { row;
      polly;
      pipeline =
        Some
          { Polyprof.prog;
            hir = Some w.Workload.hir;
            structure;
            profile;
            analysis;
            feedback };
      dep_keys;
      sched_bailed = false;
      lint;
      xform =
        (if xverify then
           Some
             (Polyprof.apply_and_verify ~name:w.Workload.w_name w.Workload.hir)
         else None) }
  end

let run_all ?budget ?crosscheck ?xverify () =
  List.map (fun w -> (w, run ?budget ?crosscheck ?xverify w)) Rodinia.all

let full_header = Sched.Metrics.header @ [ "Polly" ]

let table5 results =
  let rows =
    List.map
      (fun ((_ : Workload.t), o) ->
        Sched.Metrics.to_strings o.row
        @ [ Staticbase.Polly_lite.reasons_string o.polly ])
      results
  in
  Report.Texttable.render ~header:full_header rows

let verify_table results =
  let rows =
    List.map
      (fun ((w : Workload.t), o) ->
        match o.xform with
        | None ->
            [ w.Workload.w_name; "-"; "-"; "-"; "-";
              (if o.sched_bailed then "sched bailed out" else "not run") ]
        | Some (s : Xform.Driver.summary) ->
            let plans = List.length s.Xform.Driver.sm_entries in
            let note =
              let rejected =
                List.filter_map
                  (fun (e : Xform.Driver.entry) ->
                    match e.Xform.Driver.en_status with
                    | Xform.Driver.Rejected why -> Some why
                    | _ -> None)
                  s.Xform.Driver.sm_entries
              in
              match rejected with [] -> "" | why :: _ -> why
            in
            [ w.Workload.w_name;
              string_of_int plans;
              string_of_int s.Xform.Driver.sm_verified;
              string_of_int s.Xform.Driver.sm_rejected;
              string_of_int s.Xform.Driver.sm_skipped;
              note ])
      results
  in
  Report.Texttable.render
    ~header:[ "Benchmark"; "Plans"; "Verified"; "Rejected"; "Skipped"; "Note" ]
    rows

let table5_with_paper results =
  let rows =
    List.concat_map
      (fun ((w : Workload.t), o) ->
        let measured =
          Sched.Metrics.to_strings o.row
          @ [ Staticbase.Polly_lite.reasons_string o.polly ]
        in
        match w.Workload.paper with
        | None -> [ measured ]
        | Some p ->
            [ measured;
              [ "  (paper)"; "-"; "-"; p.Workload.p_aff; p.p_region; "-"; "-";
                "-";
                (if p.p_interproc then "Y" else "N");
                (if p.p_skew then "Y" else "N");
                p.p_par; p.p_simd; p.p_reuse; p.p_preuse;
                Printf.sprintf "%dD" p.p_ld_src;
                Printf.sprintf "%dD" p.p_ld_bin;
                (if p.p_tiled = 0 then "-" else Printf.sprintf "%dD" p.p_tiled);
                p.p_tilops; p.p_c; p.p_comp; p.p_fusion; p.p_polly ] ])
      results
  in
  Report.Texttable.render ~header:full_header rows

(* ------------------------------------------------------------------ *)
(* Autotuning (Tune.Search) over the suite                             *)
(* ------------------------------------------------------------------ *)

(* Workloads the autotuner searches: the fully static PolyBench kernels
   plus mini-Rodinia programs whose hot region is a plain loop nest.
   streamcluster is excluded — its scheduling stage bails out and the
   search driver refuses it for the same dependence-budget reason. *)
let autotune_suite : Workload.t list =
  Polybench.all
  @ [ Backprop.workload;
      Hotspot.workload;
      Kmeans.workload;
      Nw.workload;
      Pathfinder.workload;
      Srad.v1 ]

let autotune_all ?config () =
  List.map
    (fun (w : Workload.t) ->
      ( w.Workload.w_name,
        Polyprof.autotune ?config ~name:w.Workload.w_name w.Workload.hir ))
    autotune_suite

let autotune_table results =
  let rows =
    List.map
      (fun (name, r) ->
        match r with
        | Error e -> [ name; "-"; "-"; "-"; "-"; "-"; e ]
        | Ok (s : Tune.Search.t) ->
            let best, speedup =
              match s.Tune.Search.r_best with
              | None -> ("identity", "1.00x")
              | Some b ->
                  ( String.concat " ; " b.Tune.Search.b_steps,
                    Printf.sprintf "%.2fx" b.Tune.Search.b_speedup )
            in
            [ name;
              string_of_int s.Tune.Search.r_explored;
              string_of_int s.Tune.Search.r_illegal;
              string_of_int s.Tune.Search.r_measured;
              string_of_int s.Tune.Search.r_verified;
              speedup;
              best ])
      results
  in
  Report.Texttable.render
    ~header:
      [ "Benchmark"; "Explored"; "Illegal"; "Measured"; "Verified";
        "Speedup"; "Best schedule" ]
    rows
