(** Shared driver for the benchmark harness, CLI, tests and examples:
    run a workload through the full POLY-PROF pipeline, produce its
    Table 5 row (with the streamcluster-style scheduler bail-out) and
    the Polly baseline verdict. *)

type outcome = {
  row : Sched.Metrics.row;
  polly : Staticbase.Polly_lite.verdict;
  pipeline : Polyprof.t option;
      (** [None] when the scheduling stage bailed out *)
  dep_keys : int;  (** folded dependence relations in the DDG *)
  sched_bailed : bool;
  lint : Analysis.Lint.entry option;
      (** static lint + static-vs-dynamic cross-check of the profiled
          DDG; [Some] iff [run ~crosscheck:true] *)
  xform : Xform.Driver.summary option;
      (** differential transformation verification of every suggested
          schedule; [Some] iff [run ~xverify:true] and the scheduler did
          not bail out *)
}

val sched_budget : int
(** Maximum number of folded dependence relations the scheduling stage
    accepts before declaring a blow-up (streamcluster reproduces the
    paper's scheduler memory exhaustion by exceeding it). *)

val run :
  ?budget:int -> ?crosscheck:bool -> ?xverify:bool -> ?out_of_core:int ->
  ?static_prune:bool -> Workload.t -> outcome
(** [out_of_core = Some domains] records the execution to a temporary
    binary trace file and replays both instrumentation stages from it,
    Instrumentation II sharded over [domains] workers
    ({!Stream.Par_profile}); the profile is identical to the default
    in-process run.

    [static_prune] runs {!Analysis.Statdep} first and profiles under
    its instrumentation-pruning plan: statically-resolved accesses skip
    shadow tracking (and, on the out-of-core path, their addresses are
    elided from the trace file; sharding is then replaced by a
    sequential replay, as pruning is sequential-only).  The profile is
    asserted identical to the unpruned one by construction. *)

val run_all :
  ?budget:int -> ?crosscheck:bool -> ?xverify:bool -> unit ->
  (Workload.t * outcome) list
(** All 19 mini-Rodinia benchmarks, in Table 5 order. *)

val table5 : (Workload.t * outcome) list -> string
(** Render the Table 5 reproduction (measured values). *)

val table5_with_paper : (Workload.t * outcome) list -> string
(** Measured rows interleaved with the paper's reference rows. *)

val verify_table : (Workload.t * outcome) list -> string
(** One row per benchmark: suggested plans applied and differentially
    verified / rejected / skipped (requires [run ~xverify:true]). *)

val autotune_suite : Workload.t list
(** Workloads the autotuning schedule search ({!Tune.Search}) walks: the
    PolyBench kernels plus the mini-Rodinia programs with a plain
    loop-nest hot region (streamcluster's scheduler bail-out excludes
    it). *)

val autotune_all :
  ?config:Tune.Search.config -> unit ->
  (string * (Tune.Search.t, string) result) list
(** Run the beam search over {!autotune_suite}. *)

val autotune_table :
  (string * (Tune.Search.t, string) result) list -> string
(** One summary row per workload: candidates explored / measured /
    verified and the best verified schedule with its speedup. *)
