(** Mini-PolyBench kernels: fully affine loop nests with compile-time
    constant bounds and direct (non-indirect) subscripts.  Unlike most
    mini-Rodinia programs these are completely static — the polyhedral
    dependence engine ({!Analysis.Statdep}) resolves every access, so
    they exercise the instrumentation-pruning fast path end to end
    (close to 100% of dynamic memory accesses skip shadow tracking). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let loc = Workload.loc

(* ------------------------------------------------------------------ *)
(* gemm: C := A * B + C                                                *)
(* ------------------------------------------------------------------ *)

let gemm =
  let n = 12 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "gemm_kernel" []
      [ H.for_ ~loc:(loc "gemm.c" 10) "r" (i 0) (i n)
          [ H.for_ ~loc:(loc "gemm.c" 11) "c" (i 0) (i n)
              [ H.for_ ~loc:(loc "gemm.c" 13) "k" (i 0) (i n)
                  [ H.Let ("a", "A".%[at (v "r") (v "k")]);
                    H.Let ("b", "B".%[at (v "k") (v "c")]);
                    H.Let ("acc", "C".%[at (v "r") (v "c")]);
                    store "C" (at (v "r") (v "c"))
                      (v "acc" +? (v "a" *? v "b")) ] ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "A" (n * n)
      @ Workload.init_float_array "B" (n * n)
      @ Workload.init_float_array "C" (n * n)
      @ [ H.CallS (None, "gemm_kernel", []) ])
  in
  Workload.make ~name:"gemm" ~kernel:"gemm_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("A", n * n); ("B", n * n); ("C", n * n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* jacobi_2d: alternating 5-point stencil sweeps                       *)
(* ------------------------------------------------------------------ *)

let jacobi_2d =
  let n = 14 and steps = 3 in
  let at r c = (r *! i n) +! c in
  let sweep fname src dst line =
    H.fundef fname []
      [ H.for_ ~loc:(loc "jacobi-2d.c" line) "r" (i 1) (i (n - 1))
          [ H.for_ ~loc:(loc "jacobi-2d.c" (line + 1)) "c" (i 1) (i (n - 1))
              [ H.Let ("m", src.%[at (v "r") (v "c")]);
                H.Let ("no", src.%[at (v "r" -! i 1) (v "c")]);
                H.Let ("so", src.%[at (v "r" +! i 1) (v "c")]);
                H.Let ("we", src.%[at (v "r") (v "c" -! i 1)]);
                H.Let ("ea", src.%[at (v "r") (v "c" +! i 1)]);
                store dst (at (v "r") (v "c"))
                  (f 0.2
                  *? (v "m" +? (v "no" +? (v "so" +? (v "we" +? v "ea")))))
              ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Aj" (n * n)
      @ Workload.init_float_array "Bj" (n * n)
      @ [ H.for_ ~loc:(loc "jacobi-2d.c" 30) "t" (i 0) (i steps)
            [ H.CallS (None, "jacobi_step_ab", []);
              H.CallS (None, "jacobi_step_ba", []) ] ])
  in
  Workload.make ~name:"jacobi_2d" ~kernel:"jacobi_step_ab"
    { H.funs =
        Workload.libm
        @ [ sweep "jacobi_step_ab" "Aj" "Bj" 10;
            sweep "jacobi_step_ba" "Bj" "Aj" 20;
            main ];
      arrays = [ ("Aj", n * n); ("Bj", n * n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* atax: y := A^T (A x)                                                *)
(* ------------------------------------------------------------------ *)

let atax =
  let n = 20 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "atax_kernel" []
      [ H.for_ ~loc:(loc "atax.c" 8) "r0" (i 0) (i n)
          [ store "yv" (v "r0") (f 0.0) ];
        H.for_ ~loc:(loc "atax.c" 10) "r" (i 0) (i n)
          [ H.Let ("tmp", f 0.0);
            H.for_ ~loc:(loc "atax.c" 12) "c" (i 0) (i n)
              [ H.Let ("a", "Ax".%[at (v "r") (v "c")]);
                H.Let ("x", "xv".%[v "c"]);
                H.Let ("tmp", v "tmp" +? (v "a" *? v "x")) ];
            H.for_ ~loc:(loc "atax.c" 15) "c2" (i 0) (i n)
              [ H.Let ("a2", "Ax".%[at (v "r") (v "c2")]);
                H.Let ("y0", "yv".%[v "c2"]);
                store "yv" (v "c2") (v "y0" +? (v "a2" *? v "tmp")) ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Ax" (n * n)
      @ Workload.init_float_array "xv" n
      @ [ H.CallS (None, "atax_kernel", []) ])
  in
  Workload.make ~name:"atax" ~kernel:"atax_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("Ax", n * n); ("xv", n); ("yv", n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* mvt: x1 += A y1;  x2 += A^T y2                                      *)
(* ------------------------------------------------------------------ *)

let mvt =
  let n = 24 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "mvt_kernel" []
      [ H.for_ ~loc:(loc "mvt.c" 8) "r" (i 0) (i n)
          [ H.for_ ~loc:(loc "mvt.c" 9) "c" (i 0) (i n)
              [ H.Let ("x1", "x1v".%[v "r"]);
                H.Let ("a", "Am".%[at (v "r") (v "c")]);
                H.Let ("y1", "y1v".%[v "c"]);
                store "x1v" (v "r") (v "x1" +? (v "a" *? v "y1")) ] ];
        H.for_ ~loc:(loc "mvt.c" 13) "r2" (i 0) (i n)
          [ H.for_ ~loc:(loc "mvt.c" 14) "c2" (i 0) (i n)
              [ H.Let ("x2", "x2v".%[v "r2"]);
                H.Let ("a2", "Am".%[at (v "c2") (v "r2")]);
                H.Let ("y2", "y2v".%[v "c2"]);
                store "x2v" (v "r2") (v "x2" +? (v "a2" *? v "y2")) ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Am" (n * n)
      @ Workload.init_float_array "x1v" n
      @ Workload.init_float_array "x2v" n
      @ Workload.init_float_array "y1v" n
      @ Workload.init_float_array "y2v" n
      @ [ H.CallS (None, "mvt_kernel", []) ])
  in
  Workload.make ~name:"mvt" ~kernel:"mvt_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays =
        [ ("Am", n * n); ("x1v", n); ("x2v", n); ("y1v", n); ("y2v", n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* seidel_1d: in-place 3-point Gauss-Seidel sweeps (loop-carried)      *)
(* ------------------------------------------------------------------ *)

let seidel_1d =
  let n = 40 and steps = 6 in
  let kernel =
    H.fundef "seidel_kernel" []
      [ H.for_ ~loc:(loc "seidel-1d.c" 8) "t" (i 0) (i steps)
          [ H.for_ ~loc:(loc "seidel-1d.c" 9) "j" (i 1) (i (n - 1))
              [ H.Let ("w", "As".%[v "j" -! i 1]);
                H.Let ("m", "As".%[v "j"]);
                H.Let ("e", "As".%[v "j" +! i 1]);
                store "As" (v "j")
                  (f 0.33333 *? (v "w" +? (v "m" +? v "e"))) ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "As" n
      @ [ H.CallS (None, "seidel_kernel", []) ])
  in
  Workload.make ~name:"seidel_1d" ~kernel:"seidel_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("As", n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* trisolv: forward substitution x := L^-1 b (triangular bounds)        *)
(* ------------------------------------------------------------------ *)

let trisolv =
  let n = 24 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "trisolv_kernel" []
      [ H.for_ ~loc:(loc "trisolv.c" 8) "r" (i 0) (i n)
          [ H.Let ("acc", "bt".%[v "r"]);
            H.for_ ~loc:(loc "trisolv.c" 10) "c" (i 0) (v "r")
              [ H.Let ("l", "Lt".%[at (v "r") (v "c")]);
                H.Let ("x", "xt".%[v "c"]);
                H.Let ("acc", v "acc" -? (v "l" *? v "x")) ];
            H.Let ("d", "Lt".%[at (v "r") (v "r")]);
            store "xt" (v "r") (v "acc" /? (v "d" +? f 1.0)) ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Lt" (n * n)
      @ Workload.init_float_array "bt" n
      @ [ H.CallS (None, "trisolv_kernel", []) ])
  in
  Workload.make ~name:"trisolv" ~kernel:"trisolv_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("Lt", n * n); ("bt", n); ("xt", n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* cholesky: in-place lower-triangular factorisation (no sqrt: the     *)
(* diagonal is regularised instead, which keeps the access pattern)    *)
(* ------------------------------------------------------------------ *)

let cholesky =
  let n = 32 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "cholesky_kernel" []
      [ H.for_ ~loc:(loc "cholesky.c" 8) "r" (i 0) (i n)
          [ H.for_ ~loc:(loc "cholesky.c" 9) "c" (i 0) (v "r")
              [ H.for_ ~loc:(loc "cholesky.c" 11) "k" (i 0) (v "c")
                  [ H.Let ("a", "Ach".%[at (v "r") (v "k")]);
                    H.Let ("b", "Ach".%[at (v "c") (v "k")]);
                    H.Let ("acc", "Ach".%[at (v "r") (v "c")]);
                    store "Ach" (at (v "r") (v "c"))
                      (v "acc" -? (v "a" *? v "b")) ];
                H.Let ("d", "Ach".%[at (v "c") (v "c")]);
                H.Let ("acc2", "Ach".%[at (v "r") (v "c")]);
                store "Ach" (at (v "r") (v "c"))
                  (v "acc2" /? (v "d" +? f 1.0)) ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Ach" (n * n)
      @ [ H.CallS (None, "cholesky_kernel", []) ])
  in
  Workload.make ~name:"cholesky" ~kernel:"cholesky_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("Ach", n * n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* trmm: B := A^T B with unit-diagonal triangular A (affine lower       *)
(* bound k = r+1 in an outer IV)                                        *)
(* ------------------------------------------------------------------ *)

let trmm =
  let m = 24 in
  let at r c = (r *! i m) +! c in
  let kernel =
    H.fundef "trmm_kernel" []
      [ H.for_ ~loc:(loc "trmm.c" 8) "r" (i 0) (i m)
          [ H.for_ ~loc:(loc "trmm.c" 9) "c" (i 0) (i m)
              [ H.for_ ~loc:(loc "trmm.c" 11) "k" (v "r" +! i 1) (i m)
                  [ H.Let ("a", "Atm".%[at (v "k") (v "r")]);
                    H.Let ("b", "Btm".%[at (v "k") (v "c")]);
                    H.Let ("acc", "Btm".%[at (v "r") (v "c")]);
                    store "Btm" (at (v "r") (v "c"))
                      (v "acc" +? (v "a" *? v "b")) ];
                H.Let ("acc2", "Btm".%[at (v "r") (v "c")]);
                store "Btm" (at (v "r") (v "c")) (f 1.5 *? v "acc2") ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Atm" (m * m)
      @ Workload.init_float_array "Btm" (m * m)
      @ [ H.CallS (None, "trmm_kernel", []) ])
  in
  Workload.make ~name:"trmm" ~kernel:"trmm_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("Atm", m * m); ("Btm", m * m) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* lu: in-place LU factorisation (trapezoidal: both inner loops start   *)
(* at k+1)                                                              *)
(* ------------------------------------------------------------------ *)

let lu =
  let n = 28 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "lu_kernel" []
      [ H.for_ ~loc:(loc "lu.c" 8) "k" (i 0) (i n)
          [ H.for_ ~loc:(loc "lu.c" 9) "c" (v "k" +! i 1) (i n)
              [ H.Let ("p", "Alu".%[at (v "k") (v "k")]);
                H.Let ("u", "Alu".%[at (v "k") (v "c")]);
                store "Alu" (at (v "k") (v "c"))
                  (v "u" /? (v "p" +? f 1.0)) ];
            H.for_ ~loc:(loc "lu.c" 12) "r" (v "k" +! i 1) (i n)
              [ H.for_ ~loc:(loc "lu.c" 13) "c2" (v "k" +! i 1) (i n)
                  [ H.Let ("l", "Alu".%[at (v "r") (v "k")]);
                    H.Let ("u2", "Alu".%[at (v "k") (v "c2")]);
                    H.Let ("acc", "Alu".%[at (v "r") (v "c2")]);
                    store "Alu" (at (v "r") (v "c2"))
                      (v "acc" -? (v "l" *? v "u2")) ] ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Alu" (n * n)
      @ [ H.CallS (None, "lu_kernel", []) ])
  in
  Workload.make ~name:"lu" ~kernel:"lu_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("Alu", n * n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* seidel_wd: "weakly dynamic" thresholded Gauss-Seidel — the store is  *)
(* guarded by a data-dependent branch that in fact always fires (the    *)
(* initial values are non-negative), so the speculative static engine   *)
(* keeps the polyhedral model under an Expect_taken witness             *)
(* ------------------------------------------------------------------ *)

let seidel_wd_kernel ~name ~threshold ~flip =
  let n = 96 and steps = 14 in
  let guard s = if flip then s <? f threshold else s >? f threshold in
  let kernel =
    H.fundef (name ^ "_kernel") []
      [ H.for_ ~loc:(loc "seidel-wd.c" 8) "t" (i 0) (i steps)
          [ H.for_ ~loc:(loc "seidel-wd.c" 9) "j" (i 1) (i (n - 1))
              [ H.Let ("w", "Aw".%[v "j" -! i 1]);
                H.Let ("m", "Aw".%[v "j"]);
                H.Let ("e", "Aw".%[v "j" +! i 1]);
                H.Let ("s", f 0.33333 *? (v "w" +? (v "m" +? v "e")));
                H.If (guard (v "s"), [ store "Aw" (v "j") (v "s") ], []) ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Aw" n
      @ [ H.CallS (None, name ^ "_kernel", []) ])
  in
  Workload.make ~name ~kernel:(name ^ "_kernel")
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("Aw", n) ];
      main = "main" }

let seidel_wd = seidel_wd_kernel ~name:"seidel_wd" ~threshold:(-1.0) ~flip:false

(* witness-failure seeds (not in [all]): [seidel_wd_mixed]'s guard goes
   both ways at runtime (speculation must be turned off for the guard),
   [seidel_wd_skip]'s guard never fires (the speculation flips to an
   Expect_skip witness) — both recover exact results via
   [Analysis.Statdep.fallback_profile] *)
let seidel_wd_mixed =
  seidel_wd_kernel ~name:"seidel_wd_mixed" ~threshold:1.0 ~flip:false

let seidel_wd_skip =
  seidel_wd_kernel ~name:"seidel_wd_skip" ~threshold:(-1.0) ~flip:true

(* ------------------------------------------------------------------ *)
(* gesummv: y := alpha*A*x + beta*B*x, naively split into three loops   *)
(* (the straightforward C translation computes tmp, then y, then the    *)
(* linear combination — a classic fusion chain for the autotuner)       *)
(* ------------------------------------------------------------------ *)

let gesummv =
  let n = 20 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "gesummv_kernel" []
      [ H.for_ ~loc:(loc "gesummv.c" 8) "r" (i 0) (i n)
          [ H.for_ ~loc:(loc "gesummv.c" 9) "c" (i 0) (i n)
              [ H.Let ("t", "tmp".%[v "r"]);
                H.Let ("a", "Ag".%[at (v "r") (v "c")]);
                H.Let ("x", "xg".%[v "c"]);
                store "tmp" (v "r") (v "t" +? (v "a" *? v "x")) ] ];
        H.for_ ~loc:(loc "gesummv.c" 12) "r2" (i 0) (i n)
          [ H.for_ ~loc:(loc "gesummv.c" 13) "c2" (i 0) (i n)
              [ H.Let ("y", "yg".%[v "r2"]);
                H.Let ("b", "Bg".%[at (v "r2") (v "c2")]);
                H.Let ("x2", "xg".%[v "c2"]);
                store "yg" (v "r2") (v "y" +? (v "b" *? v "x2")) ] ];
        H.for_ ~loc:(loc "gesummv.c" 16) "r3" (i 0) (i n)
          [ H.Let ("tf", "tmp".%[v "r3"]);
            H.Let ("yf", "yg".%[v "r3"]);
            store "yg" (v "r3")
              ((f 1.5 *? v "tf") +? (f 1.2 *? v "yf")) ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Ag" (n * n)
      @ Workload.init_float_array "Bg" (n * n)
      @ Workload.init_float_array "xg" n
      @ Workload.init_float_array "tmp" n
      @ Workload.init_float_array "yg" n
      @ [ H.CallS (None, "gesummv_kernel", []) ])
  in
  Workload.make ~name:"gesummv" ~kernel:"gesummv_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays =
        [ ("Ag", n * n); ("Bg", n * n); ("xg", n); ("tmp", n); ("yg", n) ];
      main = "main" }

(* ------------------------------------------------------------------ *)
(* bicg: s := A^T r and q := A p, split into two independent nests      *)
(* ------------------------------------------------------------------ *)

let bicg =
  let n = 20 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "bicg_kernel" []
      [ H.for_ ~loc:(loc "bicg.c" 8) "r" (i 0) (i n)
          [ H.for_ ~loc:(loc "bicg.c" 9) "c" (i 0) (i n)
              [ H.Let ("s", "sv".%[v "c"]);
                H.Let ("rr", "rv".%[v "r"]);
                H.Let ("a", "Ab".%[at (v "r") (v "c")]);
                store "sv" (v "c") (v "s" +? (v "rr" *? v "a")) ] ];
        H.for_ ~loc:(loc "bicg.c" 12) "r2" (i 0) (i n)
          [ H.for_ ~loc:(loc "bicg.c" 13) "c2" (i 0) (i n)
              [ H.Let ("q", "qv".%[v "r2"]);
                H.Let ("a2", "Ab".%[at (v "r2") (v "c2")]);
                H.Let ("p", "pv".%[v "c2"]);
                store "qv" (v "r2") (v "q" +? (v "a2" *? v "p")) ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "Ab" (n * n)
      @ Workload.init_float_array "rv" n
      @ Workload.init_float_array "pv" n
      @ Workload.init_float_array "sv" n
      @ Workload.init_float_array "qv" n
      @ [ H.CallS (None, "bicg_kernel", []) ])
  in
  Workload.make ~name:"bicg" ~kernel:"bicg_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays =
        [ ("Ab", n * n); ("rv", n); ("pv", n); ("sv", n); ("qv", n) ];
      main = "main" }

let all =
  [ gemm; jacobi_2d; atax; mvt; gesummv; bicg; seidel_1d; trisolv; cholesky;
    trmm; lu; seidel_wd ]

(* ------------------------------------------------------------------ *)
(* Seeded parallelism-certifier variants.  Not part of [all]: each one
   pins one verdict of the certifier ({!Analysis.Parcheck}) on its
   outer kernel loop, for the parcheck smoke gates and tests.          *)
(* ------------------------------------------------------------------ *)

(* par_racy: a true loop-carried flow dependence on the outer loop,
   A[r] = A[r-1] + B[r] -- must yield a race witness, never a
   certificate (and the dynamic sanitizer must observe the conflict). *)
let par_racy =
  let n = 24 in
  let kernel =
    H.fundef "par_racy_kernel" []
      [ H.for_ ~loc:(loc "par-racy.c" 5) "r" (i 1) (i n)
          [ H.Let ("p", "A".%[v "r" -! i 1]);
            H.Let ("b", "B".%[v "r"]);
            store "A" (v "r") (v "p" +? v "b") ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "A" n
      @ Workload.init_float_array "B" n
      @ [ H.CallS (None, "par_racy_kernel", []) ])
  in
  Workload.make ~name:"par_racy" ~kernel:"par_racy_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("A", n); ("B", n) ];
      main = "main" }

(* par_reduction: S[0] += A[r] * A[r] -- a commutative read-modify-write
   chain on a single location; the outer loop is certified with a
   non-empty reduction access set. *)
let par_reduction =
  let n = 24 in
  let kernel =
    H.fundef "par_reduction_kernel" []
      [ H.for_ ~loc:(loc "par-reduction.c" 5) "r" (i 0) (i n)
          [ H.Let ("a", "A".%[v "r"]);
            H.Let ("acc", "S".%[i 0]);
            store "S" (i 0) (v "acc" +? (v "a" *? v "a")) ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "A" n
      @ Workload.init_float_array "S" 1
      @ [ H.CallS (None, "par_reduction_kernel", []) ])
  in
  Workload.make ~name:"par_reduction" ~kernel:"par_reduction_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("A", n); ("S", 1) ];
      main = "main" }

(* par_private: the scratch row T is fully overwritten before being
   read in every outer iteration -- the outer loop is certified by
   array privatisation of T. *)
let par_private =
  let n = 10 in
  let at r c = (r *! i n) +! c in
  let kernel =
    H.fundef "par_private_kernel" []
      [ H.for_ ~loc:(loc "par-private.c" 5) "r" (i 0) (i n)
          [ H.for_ ~loc:(loc "par-private.c" 6) "c" (i 0) (i n)
              [ H.Let ("a", "A".%[at (v "r") (v "c")]);
                store "T" (v "c") (v "a" *? f 0.5) ];
            H.for_ ~loc:(loc "par-private.c" 8) "c2" (i 0) (i n)
              [ H.Let ("t", "T".%[v "c2"]);
                H.Let ("cc", "C".%[at (v "r") (v "c2")]);
                store "C" (at (v "r") (v "c2")) (v "cc" +? v "t") ] ] ]
  in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "A" (n * n)
      @ Workload.init_float_array "C" (n * n)
      @ Workload.init_float_array "T" n
      @ [ H.CallS (None, "par_private_kernel", []) ])
  in
  Workload.make ~name:"par_private" ~kernel:"par_private_kernel"
    { H.funs = Workload.libm @ [ kernel; main ];
      arrays = [ ("A", n * n); ("C", n * n); ("T", n) ];
      main = "main" }

(* findable by name (CLI, serve) without joining the benchmark suite *)
let seeded = [ par_racy; par_reduction; par_private ]
