(** Paper §8-style overhead accounting: run a workload natively, under
    in-process profiling, out-of-core (trace to disk, sharded replay)
    and with static instrumentation pruning; report the slowdown of
    each configuration and the trace bytes per memory access. *)

type row = {
  r_mode : string;  (** ["native" | "instrumented" | "out-of-core" | "static-pruned"] *)
  r_seconds : float;
  r_slowdown : float;  (** vs the native row *)
  r_trace_bytes : int option;  (** out-of-core only *)
}

type t = {
  o_name : string;
  o_domains : int;
  o_events : int;
  o_accesses : int;
  o_dyn_instrs : int;
  o_rows : row list;  (** native first *)
  o_bytes_per_access : float option;
}

val measure : ?domains:int -> ?repeat:int -> Workload.t -> t
(** Best-of-[repeat] (default 3) wall time per configuration. *)

val table : t -> string
val json : t -> Obs.Json_emit.t
(** Carries the {!Obs.Json_emit.schema_header} preamble. *)
