(* Paper §8-style overhead accounting: how much slower a workload runs
   under each profiling configuration, relative to its uninstrumented
   native interpretation, plus the trace-size cost of the out-of-core
   path (bytes per memory access). *)

type row = {
  r_mode : string;
  r_seconds : float;
  r_slowdown : float;  (** vs the native row *)
  r_trace_bytes : int option;  (** out-of-core only *)
}

type t = {
  o_name : string;
  o_domains : int;
  o_events : int;  (** events in the recorded trace *)
  o_accesses : int;  (** dynamic memory accesses *)
  o_dyn_instrs : int;
  o_rows : row list;  (** native first *)
  o_bytes_per_access : float option;
}

(* best-of-[repeat] wall time: mini workloads run in milliseconds, the
   minimum is the usual noise-robust estimator *)
let time ~repeat f =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to max 1 repeat do
    let t0 = Obs.Clock.monotonic () in
    let r = f () in
    let dt = Obs.Clock.monotonic () -. t0 in
    if dt < !best then best := dt;
    last := Some r
  done;
  (Option.get !last, !best)

let measure ?domains ?(repeat = 3) (w : Workload.t) =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Stream.Par_profile.default_domains ()
  in
  let prog = Vm.Hir.lower w.Workload.hir in
  let stats, t_native = time ~repeat (fun () -> Vm.Interp.run prog) in
  let profile, t_inst =
    time ~repeat (fun () ->
        let structure = Cfg.Cfg_builder.run prog in
        Ddg.Depprof.profile prog ~structure)
  in
  (* out-of-core: record the binary trace, then replay both
     instrumentation stages from the file (Instrumentation II sharded) *)
  let path = Filename.temp_file "polyprof_overhead" ".trace" in
  let (wi, _), t_ooc =
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    @@ fun () ->
    time ~repeat (fun () ->
        let wi = Stream.Trace_file.record_to_file prog path in
        let builder = Cfg.Cfg_builder.create prog in
        Stream.Source.with_file path (fun src ->
            Stream.Source.replay src (Cfg.Cfg_builder.callbacks builder));
        let structure = Cfg.Cfg_builder.finalize builder in
        let o = Stream.Par_profile.profile_file ~domains path prog ~structure in
        (wi, o.Stream.Par_profile.result))
  in
  (* static pruning: the plan is compile-time work, computed outside the
     timed region like the paper's ahead-of-time analysis *)
  let plan = (Analysis.Statdep.analyse prog).Analysis.Statdep.plan in
  let _, t_pruned =
    time ~repeat (fun () ->
        let structure = Cfg.Cfg_builder.run prog in
        Ddg.Depprof.profile ~static_prune:plan prog ~structure)
  in
  let accesses = max 1 stats.Vm.Interp.dyn_mem_ops in
  let slow s = s /. (t_native +. 1e-9) in
  let row ?bytes mode s =
    { r_mode = mode;
      r_seconds = s;
      r_slowdown = slow s;
      r_trace_bytes = bytes }
  in
  ignore profile;
  { o_name = w.Workload.w_name;
    o_domains = domains;
    o_events = wi.Stream.Trace_file.wi_events;
    o_accesses = stats.Vm.Interp.dyn_mem_ops;
    o_dyn_instrs = stats.Vm.Interp.dyn_instrs;
    o_rows =
      [ row "native" t_native;
        row "instrumented" t_inst;
        row ~bytes:wi.Stream.Trace_file.wi_bytes "out-of-core" t_ooc;
        row "static-pruned" t_pruned ];
    o_bytes_per_access =
      Some (float_of_int wi.Stream.Trace_file.wi_bytes /. float_of_int accesses) }

let table (o : t) =
  let rows =
    List.map
      (fun r ->
        [ r.r_mode;
          Printf.sprintf "%.4f" r.r_seconds;
          Printf.sprintf "%.1fx" r.r_slowdown;
          (match r.r_trace_bytes with
          | Some b -> string_of_int b
          | None -> "-");
          (match (r.r_trace_bytes, o.o_bytes_per_access) with
          | Some _, Some bpa -> Printf.sprintf "%.2f" bpa
          | _ -> "-") ])
      o.o_rows
  in
  Printf.sprintf "%s: %d events, %d memory accesses, %d instrs (%d domains)\n%s"
    o.o_name o.o_events o.o_accesses o.o_dyn_instrs o.o_domains
    (Report.Texttable.render
       ~header:[ "Mode"; "Seconds"; "Slowdown"; "TraceBytes"; "B/access" ]
       rows)

let json (o : t) =
  let open Obs.Json_emit in
  Obj
    (schema_header ~schema_version:Obs.Schemas.overhead
    @ [ ("benchmark", Str o.o_name);
        ("domains", Int o.o_domains);
        ("events", Int o.o_events);
        ("accesses", Int o.o_accesses);
        ("dyn_instrs", Int o.o_dyn_instrs);
        ( "bytes_per_access",
          match o.o_bytes_per_access with
          | Some f -> Float f
          | None -> Null );
        ( "rows",
          List
            (List.map
               (fun r ->
                 Obj
                   [ ("mode", Str r.r_mode);
                     ("seconds", Float r.r_seconds);
                     ("slowdown", Float r.r_slowdown);
                     ( "trace_bytes",
                       match r.r_trace_bytes with
                       | Some b -> Int b
                       | None -> Null ) ])
               o.o_rows) ) ])
