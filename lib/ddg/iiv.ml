type ctx_id =
  | Cblock of int * int
  | Cloop of int * int
  | Ccomp of int

let pp_ctx_id fmt = function
  | Cblock (f, b) -> Format.fprintf fmt "f%d.b%d" f b
  | Cloop (f, l) -> Format.fprintf fmt "f%d.L%d" f l
  | Ccomp c -> Format.fprintf fmt "RC%d" c

type context = ctx_id list list

type dim = { mutable iv : int; dctx : ctx_id list (* innermost first *) }

type t = {
  mutable outer : dim list;  (* innermost dimension first *)
  mutable last : ctx_id list;  (* innermost context element first *)
  mutable cached_ctx_id : int;  (* -1 = dirty *)
}

let create () = { outer = []; last = []; cached_ctx_id = -1 }

let set_last t c =
  (match t.last with [] -> t.last <- [ c ] | _ :: rest -> t.last <- c :: rest);
  t.cached_ctx_id <- -1

let push_last t c =
  t.last <- c :: t.last;
  t.cached_ctx_id <- -1

let pop_last t =
  (match t.last with [] -> () | _ :: rest -> t.last <- rest);
  t.cached_ctx_id <- -1

let add_dimension t iv c =
  t.outer <- { iv; dctx = t.last } :: t.outer;
  t.last <- [ c ];
  t.cached_ctx_id <- -1

let remove_dimension t =
  match t.outer with
  | [] -> ()
  | d :: rest ->
      t.outer <- rest;
      t.last <- d.dctx;
      t.cached_ctx_id <- -1

let loop_ctx = function
  | Loop_events.Cfg_loop { l_fid; loop } -> Cloop (l_fid, loop.Cfg.Loopnest.loop_id)
  | Loop_events.Rec_comp c -> Ccomp c.Cfg.Recset.comp_id

(* Algorithm 3. *)
let update t (ev : Loop_events.t) =
  match ev with
  | Loop_events.Block (f, b) -> set_last t (Cblock (f, b))
  | Loop_events.Call_push (f, b) -> push_last t (Cblock (f, b))
  | Loop_events.Ret_pop (f, b) ->
      pop_last t;
      set_last t (Cblock (f, b))
  | Loop_events.Enter (l, f, b) ->
      (match l with
      | Loop_events.Rec_comp _ -> push_last t (loop_ctx l)
      | Loop_events.Cfg_loop _ -> set_last t (loop_ctx l));
      add_dimension t 0 (Cblock (f, b))
  | Loop_events.Iterate (_, f, b) ->
      (match t.outer with
      | d :: _ -> d.iv <- d.iv + 1
      | [] -> ());
      set_last t (Cblock (f, b))
  | Loop_events.Exit (_, f, b) ->
      remove_dimension t;
      if f >= 0 then set_last t (Cblock (f, b))

let depth t = List.length t.outer

let coords t =
  let n = depth t in
  let a = Array.make n 0 in
  List.iteri (fun i d -> a.(n - 1 - i) <- d.iv) t.outer;
  a

let context t : context =
  let dims = List.rev_map (fun d -> List.rev d.dctx) t.outer in
  dims @ [ List.rev t.last ]

(* Intern table: domain-local, so parallel profiling domains replaying
   the same event stream each intern contexts independently — and, since
   they intern in identical stream order, assign identical ids.  The
   worker that owns the schedule tree snapshots its table and the main
   domain restores it, keeping [context_of_id] valid for the later
   (main-domain) scheduling stages. *)
type intern_state = {
  tbl : (context, int) Hashtbl.t;
  rev : (int, context) Hashtbl.t;
  mutable next : int;
}

let intern_key =
  Domain.DLS.new_key (fun () ->
      { tbl = Hashtbl.create 256; rev = Hashtbl.create 256; next = 0 })

let reset_intern_table () =
  let s = Domain.DLS.get intern_key in
  Hashtbl.reset s.tbl;
  Hashtbl.reset s.rev;
  s.next <- 0

let context_id t =
  if t.cached_ctx_id >= 0 then t.cached_ctx_id
  else begin
    let s = Domain.DLS.get intern_key in
    let c = context t in
    let id =
      match Hashtbl.find_opt s.tbl c with
      | Some id -> id
      | None ->
          let id = s.next in
          s.next <- s.next + 1;
          Hashtbl.add s.tbl c id;
          Hashtbl.add s.rev id c;
          id
    in
    t.cached_ctx_id <- id;
    id
  end

let context_of_id id = Hashtbl.find (Domain.DLS.get intern_key).rev id

let snapshot_intern_table () =
  let s = Domain.DLS.get intern_key in
  let a = Array.make s.next [] in
  Hashtbl.iter (fun id c -> a.(id) <- c) s.rev;
  a

let restore_intern_table a =
  reset_intern_table ();
  let s = Domain.DLS.get intern_key in
  Array.iteri
    (fun id c ->
      Hashtbl.replace s.tbl c id;
      Hashtbl.replace s.rev id c)
    a;
  s.next <- Array.length a

let default_name c = Format.asprintf "%a" pp_ctx_id c

let pp_stack name fmt stack =
  List.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt "/";
      Format.fprintf fmt "%s" (name c))
    stack

let pp_context ?(name = default_name) fmt (c : context) =
  Format.fprintf fmt "(";
  List.iteri
    (fun i stack ->
      if i > 0 then Format.fprintf fmt ", _, ";
      pp_stack name fmt stack)
    c;
  Format.fprintf fmt ")"

let pp ?(name = default_name) fmt t =
  Format.fprintf fmt "(";
  let dims = List.rev t.outer in
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf fmt ", ";
      pp_stack name fmt (List.rev d.dctx);
      Format.fprintf fmt ", %d" d.iv)
    dims;
  if dims <> [] then Format.fprintf fmt ", ";
  pp_stack name fmt (List.rev t.last);
  Format.fprintf fmt ")"

let to_string ?name t = Format.asprintf "%a" (pp ?name) t
