(** Dynamic race sanitizer for claimed-parallel loop dimensions.

    Each claim names a loop (function id + header block).  During one
    interpreted run, every dynamic activation of a claimed loop gets a
    fresh {e epoch serial}, and each of its iterations is treated as a
    logical thread: memory accesses executed inside the activation are
    checked against an epoch-tagged shadow memory, and any
    cross-iteration W/W or R/W pair on the same address within the same
    activation is a {e conflict} — stale entries from earlier
    activations are ignored, so only true same-instance interleavings
    count.

    Conflicts covered by the claim's certificate — the address lies in
    a privatised region, or both endpoints belong to the certified
    reduction chains — are suppressed (counted, not reported).  What
    remains is a race, reported with both accesses' full iteration
    vectors (from {!Iiv}).

    The sanitizer is the dynamic half of the parallelism certifier: a
    race on a statically certified dimension is a soundness failure
    (the cross-check lives in [Analysis.Parcheck_crosscheck]-style
    consumers); a race on an uncertified dimension is dynamic evidence
    confirming the static race witness. *)

type claim = {
  cl_fid : int;
  cl_header : int;  (** header block of the claimed loop *)
  cl_label : string;  (** free-form, used in reports *)
  cl_certified : bool;  (** statically certified (for cross-checking) *)
  cl_private : (int * int) list;
      (** covered address ranges, inclusive (privatised regions) *)
  cl_reductions : Vm.Isa.Sid.t list;  (** covered reduction accesses *)
}

type race = {
  rc_addr : int;
  rc_ww : bool;  (** both endpoints are writes *)
  rc_src : Vm.Isa.Sid.t;
  rc_src_iter : int;  (** iteration of the claimed loop, earlier access *)
  rc_src_iiv : int array;  (** full IIV coordinates at the earlier access *)
  rc_dst : Vm.Isa.Sid.t;
  rc_dst_iter : int;
  rc_dst_iiv : int array;
}

type claim_stats = {
  cs_claim : claim;
  cs_instances : int;  (** dynamic activations of the loop *)
  cs_iterations : int;  (** total iterations across activations *)
  cs_covered : int;  (** conflicts suppressed by the certificate *)
  cs_races : race list;  (** first few uncovered conflicts *)
  cs_n_races : int;  (** all uncovered conflicts *)
}

type report = {
  sr_claims : claim_stats list;  (** in claim order *)
  sr_accesses : int;  (** dynamic memory accesses checked *)
}

val run :
  ?max_steps:int ->
  ?max_races:int ->
  ?args:int list ->
  Vm.Prog.t ->
  structure:Cfg.Cfg_builder.structure ->
  claims:claim list ->
  report
(** One interpreted run under the sanitizer ([max_races] caps the
    per-claim reported race list, default 5; totals are exact). *)

val ok : report -> bool
(** No uncovered race on any {e certified} claim. *)

val races_on_certified : report -> int
val pp_race : Format.formatter -> race -> unit
val pp_report : Format.formatter -> report -> unit
