(** "Instrumentation II" (paper §4–§5): profile the dynamic dependence
    graph of an execution.

    Each dynamic instruction is tagged with its dynamic IIV; dependences
    are discovered through shadow memory (for loads/stores) and shadow
    registers (per call frame), and streamed, together with statement
    domains and value/address labels, into per-context folding
    collectors.  The result is the compact polyhedral DDG: folded
    statement domains with SCEV/stride information and folded dependence
    relations, SCEV-pruned (§5, "SCEV recognition"). *)

type config = {
  stmt_cap : int;  (** buffered points per statement before widening *)
  dep_cap : int;
  max_pieces : int;
  track_reg_deps : bool;
  track_waw : bool;  (** also record output (write-after-write) deps *)
  scev_prune : bool;  (** drop dep edges touching SCEV statements (§5) *)
  boundary_splits : bool;  (** folding ablation knob *)
  per_component_labels : bool;  (** folding ablation knob *)
}

val default_config : config

type label_kind = Lvalue | Laddr | Lnone

type stmt_key = { s_ctx : int; s_sid : Vm.Isa.Sid.t }

type stmt_info = {
  sk : stmt_key;
  cls : Vm.Isa.op_class;
  s_count : int;  (** dynamic executions *)
  s_pieces : Fold.piece list;  (** folded domain; labels per [label_kind] *)
  label_kind : label_kind;
  is_scev : bool;  (** integer value expressible as an affine function *)
  affine_exact : bool;  (** domain folded exactly with affine labels *)
  depth : int;  (** iteration-vector dimensionality *)
}

type dep_kind = Reg_dep | Mem_dep | Out_dep

type dep_key = {
  src_sid : Vm.Isa.Sid.t;
  src_ctx : int;
  dst_sid : Vm.Isa.Sid.t;
  dst_ctx : int;
  kind : dep_kind;
}

type dep_info = {
  dk : dep_key;
  d_count : int;
  d_pieces : Fold.piece list;
      (** domain: consumer coordinates; labels: producer coordinates *)
  src_depth : int;
  dst_depth : int;
}

(** {2 Witness checks (speculative pruning)}

    The static engine may prune a region whose polyhedral model holds
    only under a speculation about a data-dependent branch (Klimov's
    weakly dynamic affine programs).  Each speculation ships in the plan
    as a {!witness}: a probe on one branch successor of a guard block.
    The profiling engine counts confirming ([wo_hits]) and refuting
    ([wo_misses]) branch events; a run that refutes any witness raises
    {!Witness_failure} {e before} materialising a result, so a caller
    (see [Analysis.Statdep.fallback_profile]) can refine the speculation
    and rerun deterministically with the affected region demoted to full
    shadow tracking. *)

type witness_expect =
  | Expect_taken  (** the guard always branches to [w_block] *)
  | Expect_skip  (** the guard never branches to [w_block] *)

type witness = {
  w_fid : int;
  w_guard : int;  (** block whose terminator is the speculated branch *)
  w_block : int;  (** the branch successor the speculation is about *)
  w_expect : witness_expect;
}

type witness_outcome = { wo_witness : witness; wo_hits : int; wo_misses : int }

exception Witness_failure of witness_outcome list

type result = {
  stmts : stmt_info list;
  deps : dep_info list;  (** with SCEV-producer/consumer edges pruned *)
  pruned_dep_edges : int;  (** dynamic dep edges dropped by SCEV pruning *)
  total_dep_edges : int;
  statically_pruned : int;
      (** dynamic accesses whose shadow tracking was skipped under
          [~static_prune] (0 otherwise) *)
  witnesses : witness_outcome list;
      (** outcome of every witness probe of the plan (all confirming,
          or the run would have raised {!Witness_failure}) *)
  stree : Sched_tree.t;
  cct : Cct.t;
  run_stats : Vm.Interp.stats;
  structure : Cfg.Cfg_builder.structure;
}

(** {2 Static instrumentation pruning}

    A {!static_plan} (built by [Analysis.Statdep]) describes the
    accesses whose addresses the static polyhedral dependence engine
    fully resolved: each is an affine function [base + coefs . coords]
    of its dynamic iteration vector, and together they form the
    program's {e once-executed chain} — straight-line items and
    constant-trip loops in execution order, covering every access to
    the prunable memory regions.  Profiling under [~static_prune]
    skips shadow-memory tracking for these accesses and re-derives the
    skipped dependences at finalisation by simulating the chain with a
    last-writer table, feeding edges to collectors in the exact order
    the sequential engine would have: the result is asserted (and
    tested) bit-identical to an unpruned profile. *)

type static_access = {
  sa_sid : Vm.Isa.Sid.t;
  sa_store : bool;
  sa_base : int;
  sa_coefs : int array;  (** dense, one per iteration-vector dimension *)
}

type static_item =
  | Sacc of static_access
  | Sloop of { sl_base : int; sl_coefs : int array; sl_body : static_item list }
      (** affine-trip loop: at runtime the body executes
          [max 0 (sl_base + sl_coefs . outer coords)] times, where
          [sl_coefs] has one entry per enclosing loop dimension
          (constant-trip boxes have [sl_coefs = [||]] at top level or
          all-zero coefficients) *)

type static_plan = {
  sp_items : static_item list;
  sp_resolved : (Vm.Isa.Sid.t, static_access) Hashtbl.t;
  sp_witnesses : witness list;
  sp_mem_size : int;
}

val loop_trip : base:int -> coefs:int array -> int array -> int
(** Runtime trip count of an {!Sloop} at the given outer coordinates
    (only the first [Array.length coefs] entries are read), clamped at
    0. *)

val profile :
  ?config:config ->
  ?max_steps:int ->
  ?args:int list ->
  ?static_prune:static_plan ->
  Vm.Prog.t ->
  structure:Cfg.Cfg_builder.structure ->
  result
(** Run the program under Instrumentation II.  [structure] comes from a
    previous Instrumentation-I run ({!Cfg.Cfg_builder.run}).
    [static_prune] requires a complete (non-truncated) run; the
    injection asserts its simulated execution counts against the run's
    and raises [Failure] on mismatch.
    @raise Witness_failure when the run refutes a plan witness (checked
    before any injection or finalisation). *)

val profile_replay :
  ?config:config ->
  ?static_prune:static_plan ->
  feed:(Vm.Interp.callbacks -> unit) ->
  run_stats:Vm.Interp.stats ->
  Vm.Prog.t ->
  structure:Cfg.Cfg_builder.structure ->
  result
(** Instrumentation II over a pre-recorded event stream instead of a
    live run: [feed] must deliver the events of one execution (e.g.
    [Vm.Trace.replay trace] or a streaming [Stream.Source.replay]) and
    produces a result identical to {!profile} of the same execution;
    [run_stats] are the recorded run's interpreter stats.  Under
    [static_prune] the trace may have been recorded with the addresses
    of pruned accesses elided ({!Stream.Trace_file} [~elide]): the plan
    reconstructs the statement address labels. *)

val equal_result : result -> result -> bool
(** Structural equality of the folded profile (statements, dependences,
    edge counters) — the pruning-equivalence invariant.  The schedule
    tree and CCT are not compared. *)

type dep_point = {
  p_seq : int;  (** global exec-event number of the consumer *)
  p_slot : int;  (** consultation slot within the event *)
  p_coords : int array;  (** consumer iteration vector *)
  p_lab : int array;  (** producer iteration vector *)
}
(** One buffered dynamic dependence edge (sharded profiling). *)

(** Address-sharded parallel profiling: [nshards] workers each replay
    the full event stream but own a deterministic slice of the shadow
    state (memory by 64-word address blocks, registers round-robin,
    statement keys by hash) and buffer the dynamic dependence edges they
    discover; {!Sharded.merge} restores the global edge order per folded
    dependence and reproduces the exact sequential {!profile} result.
    Workers are independent — run them in separate domains (see
    [Stream.Par_profile]) or sequentially (deterministic either way). *)
module Sharded : sig
  type partial = {
    pt_shard : int;
    pt_nshards : int;
    pt_stmts : stmt_info list;  (** finalised, this shard's keys only *)
    pt_recs : (dep_key * dep_point array) list;
    pt_stree : Sched_tree.t;  (** populated on the lead shard only *)
    pt_cct : Cct.t;  (** populated on the lead shard only *)
    pt_intern : Iiv.context array option;  (** lead shard only *)
    pt_events : int;
    pt_dep_edges : int;
    pt_peak_shadow : int;
  }

  val worker :
    ?config:config ->
    shard:int ->
    nshards:int ->
    feed:(Vm.Interp.callbacks -> unit) ->
    Vm.Prog.t ->
    structure:Cfg.Cfg_builder.structure ->
    partial
  (** Replay one full event stream as shard [shard] of [nshards].  Must
      observe the same event stream in every shard. *)

  val merge :
    ?config:config ->
    ?pmap:((unit -> dep_info) list -> dep_info list) ->
    partials:partial list ->
    run_stats:Vm.Interp.stats ->
    structure:Cfg.Cfg_builder.structure ->
    unit ->
    result
  (** Deterministically combine one partial per shard.  [pmap] runs the
      per-dependence folding thunks (default: sequentially; pass a
      domain-pool map to fold in parallel — each thunk is independent
      and pure).  [config] must match the workers'. *)
end

val stmt_domain : stmt_info -> Minisl.Pset.t
val dep_map : dep_info -> Minisl.Pmap.t option
(** The dependence as a piecewise affine map consumer -> producer; [None]
    if any piece has unknown (top) labels. *)
