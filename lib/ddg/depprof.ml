type config = {
  stmt_cap : int;
  dep_cap : int;
  max_pieces : int;
  track_reg_deps : bool;
  track_waw : bool;
  scev_prune : bool;
  boundary_splits : bool;
  per_component_labels : bool;
}

let default_config =
  { stmt_cap = 100_000;
    dep_cap = 50_000;
    max_pieces = 16;
    track_reg_deps = true;
    track_waw = false;
    scev_prune = true;
    boundary_splits = true;
    per_component_labels = true }

type label_kind = Lvalue | Laddr | Lnone

type stmt_key = { s_ctx : int; s_sid : Vm.Isa.Sid.t }

type stmt_info = {
  sk : stmt_key;
  cls : Vm.Isa.op_class;
  s_count : int;
  s_pieces : Fold.piece list;
  label_kind : label_kind;
  is_scev : bool;
  affine_exact : bool;
  depth : int;
}

type dep_kind = Reg_dep | Mem_dep | Out_dep

type dep_key = {
  src_sid : Vm.Isa.Sid.t;
  src_ctx : int;
  dst_sid : Vm.Isa.Sid.t;
  dst_ctx : int;
  kind : dep_kind;
}

type dep_info = {
  dk : dep_key;
  d_count : int;
  d_pieces : Fold.piece list;
  src_depth : int;
  dst_depth : int;
}

(* Witness checks (speculative pruning): the static engine may prune a
   region whose model holds only under an assumption about a
   data-dependent branch.  Each assumption is a [witness]; the engine
   probes the guard's branch events at run time, and a run whose
   behaviour contradicts a witness raises {!Witness_failure} before any
   result is materialised (the caller re-analyses with the speculation
   refined and reruns). *)
type witness_expect =
  | Expect_taken  (* the guard always branches to [w_block] *)
  | Expect_skip  (* the guard never branches to [w_block] *)

type witness = {
  w_fid : int;
  w_guard : int;  (* block whose terminator is the speculated branch *)
  w_block : int;  (* the branch successor the speculation is about *)
  w_expect : witness_expect;
}

type witness_outcome = { wo_witness : witness; wo_hits : int; wo_misses : int }

exception Witness_failure of witness_outcome list

type result = {
  stmts : stmt_info list;
  deps : dep_info list;
  pruned_dep_edges : int;
  total_dep_edges : int;
  statically_pruned : int;
  witnesses : witness_outcome list;
  stree : Sched_tree.t;
  cct : Cct.t;
  run_stats : Vm.Interp.stats;
  structure : Cfg.Cfg_builder.structure;
}

(* A statically resolved access: its address is an affine function of
   the dynamic iteration vector, [base + coefs . coords].  Produced by
   [Analysis.Statdep], consumed here to skip shadow-memory tracking and
   re-derive the skipped dependences by simulation at finalisation. *)
type static_access = {
  sa_sid : Vm.Isa.Sid.t;
  sa_store : bool;
  sa_base : int;
  sa_coefs : int array;
}

type static_item =
  | Sacc of static_access
  | Sloop of { sl_base : int; sl_coefs : int array; sl_body : static_item list }

type static_plan = {
  sp_items : static_item list;
      (** the program's once-executed chain restricted to pruned
          accesses: straight-line items and affine-trip loops (runtime
          trip = [max 0 (sl_base + sl_coefs . outer coords)]), in
          execution order *)
  sp_resolved : (Vm.Isa.Sid.t, static_access) Hashtbl.t;
      (** the pruned accesses, keyed by statement id *)
  sp_witnesses : witness list;
      (** speculation assumptions the plan depends on *)
  sp_mem_size : int;
}

let loop_trip ~base ~coefs (coords : int array) =
  let t = ref base in
  Array.iteri (fun i c -> t := !t + (c * coords.(i))) coefs;
  max 0 !t

type stmt_rec = {
  collector : Fold.Collector.t;
  mutable count : int;
  r_cls : Vm.Isa.op_class;
  r_label : label_kind;
  mutable poisoned : bool;  (* saw a label of the wrong shape *)
  r_depth : int;
}

type dep_rec = {
  d_collector : Fold.Collector.t;
  mutable d_n : int;
  dr_src_depth : int;
  dr_dst_depth : int;
}

(* A buffered dynamic dependence edge (address-sharded profiling):
   enough to replay the exact [Fold.Collector.add] the sequential
   profiler would perform, in the exact order — [p_seq] is the global
   exec-event number, [p_slot] the position of this edge among the
   event's shadow consultations (reads, then the memory read, then the
   write-after-write check). *)
type dep_point = {
  p_seq : int;
  p_slot : int;
  p_coords : int array;  (* consumer iteration vector *)
  p_lab : int array;  (* producer iteration vector *)
}

type rec_buf = { mutable pts : dep_point list (* reversed *); mutable rn : int }

type witness_state = {
  ws_w : witness;
  mutable ws_hits : int;
  mutable ws_misses : int;
}

let label_kind_of prog sid =
  match Vm.Prog.instr_at prog sid with
  | Vm.Isa.Cmp _ | Vm.Isa.Fcmp _ -> Lnone
  | Vm.Isa.Load _ | Vm.Isa.Store _ -> Laddr
  | i -> (
      match Vm.Isa.class_of_instr i with
      | Vm.Isa.Int_alu -> Lvalue
      | Vm.Isa.Fp_alu | Vm.Isa.Mem_load | Vm.Isa.Mem_store | Vm.Isa.Other_op ->
          Lnone)

(* ------------------------------------------------------------------ *)
(* The profiling engine                                                 *)
(* ------------------------------------------------------------------ *)

(* One Instrumentation-II state machine.  [nshards = 1] is the exact
   sequential profiler: every statement and dependence is owned and
   dependence points stream straight into the folding collectors.  With
   [nshards > 1] the engine becomes one worker of an address-sharded
   parallel profiler: it still replays the full event stream (iteration
   vectors are a global property of the trace) but

   - maintains shadow memory only for addresses of its shard,
   - maintains shadow registers only for registers of its shard,
   - folds statement domains only for statement keys of its shard,
   - buffers its dependence edges as [dep_point]s for a deterministic
     merge instead of folding them on-line (one folded dependence can
     draw edges from addresses of several shards),
   - builds the schedule tree and CCT only on the lead shard (0), while
     still performing the same [Iiv.context_id] calls so every shard
     interns identical context ids in its domain-local table. *)
type engine = {
  e_config : config;
  e_prog : Vm.Prog.t;
  e_structure : Cfg.Cfg_builder.structure;
  shard : int;
  nshards : int;
  iiv : Iiv.t;
  levents : Loop_events.state;
  e_stree : Sched_tree.t;
  e_cct : Cct.t;
  lead : bool;
  buffer_deps : bool;  (* buffer edges for a later merge (Sharded) *)
  shadow : Shadow.t;
  stmts : (stmt_key, stmt_rec) Hashtbl.t;
  deps : (dep_key, dep_rec) Hashtbl.t;  (* direct folding *)
  recs : (dep_key, rec_buf) Hashtbl.t;  (* buffered edges *)
  e_prune : static_plan option;
  e_witness : (int * int, witness_state list) Hashtbl.t;
      (* (fid, guard block) -> probes on that guard's branch *)
  mutable n_pruned : int;  (* accesses whose shadow tracking was skipped *)
  mutable seq : int;  (* exec events seen *)
  mutable peak_shadow : int;
}

(* Address blocks of 2^6 = 64 words distribute round-robin over shards,
   so a shard owns periodic address ranges; statements hash over
   (context, sid); registers distribute round-robin.  All three are
   deterministic functions, identical in every domain. *)
let addr_block_shift = 6

let owns_addr e addr =
  e.nshards = 1
  || ((addr asr addr_block_shift) land max_int) mod e.nshards = e.shard

let owns_reg e reg = e.nshards = 1 || (reg land max_int) mod e.nshards = e.shard

let owns_stmt e ~ctx ~sid =
  e.nshards = 1 || (((ctx * 31) + sid) land max_int) mod e.nshards = e.shard

let make_engine ?(config = default_config) ?(buffer_deps = false)
    ?static_prune ~shard ~nshards prog ~structure =
  Iiv.reset_intern_table ();
  (match static_prune with
  | Some _ when nshards > 1 ->
      invalid_arg "Depprof: static pruning is sequential-only"
  | _ -> ());
  let e_witness = Hashtbl.create 8 in
  (match static_prune with
  | Some p ->
      List.iter
        (fun w ->
          let key = (w.w_fid, w.w_guard) in
          Hashtbl.replace e_witness key
            ({ ws_w = w; ws_hits = 0; ws_misses = 0 }
            :: Option.value ~default:[] (Hashtbl.find_opt e_witness key)))
        p.sp_witnesses
  | None -> ());
  { e_config = config;
    e_prog = prog;
    e_structure = structure;
    shard;
    nshards;
    iiv = Iiv.create ();
    levents = Loop_events.create structure ~main:prog.Vm.Prog.main;
    e_stree = Sched_tree.create ();
    e_cct = Cct.create ~main:prog.Vm.Prog.main;
    lead = shard = 0;
    buffer_deps;
    shadow = Shadow.create ();
    stmts = Hashtbl.create 512;
    deps = Hashtbl.create 512;
    recs = Hashtbl.create 512;
    e_prune = static_prune;
    e_witness;
    n_pruned = 0;
    seq = 0;
    peak_shadow = 0 }

let apply_levent e ev =
  Iiv.update e.iiv ev;
  match ev with
  | Loop_events.Iterate _ ->
      (* every shard interns the context (identical id sequences across
         domains); only the lead shard materialises the tree *)
      let ctx_key = Iiv.context_id e.iiv in
      if e.lead then
        Sched_tree.record_iteration e.e_stree ~ctx_key (Iiv.context e.iiv)
  | Loop_events.Enter _ | Loop_events.Exit _ | Loop_events.Block _
  | Loop_events.Call_push _ | Loop_events.Ret_pop _ ->
      ()

let on_control e ev =
  if e.lead then Cct.on_control e.e_cct ev;
  (match ev with
  | Vm.Event.Call _ -> Shadow.push_frame e.shadow
  | Vm.Event.Return _ -> Shadow.pop_frame e.shadow
  | Vm.Event.Jump { fid; src; dst } -> (
      (* witness probe: every branch of a speculated guard either
         confirms or refutes the speculation *)
      match Hashtbl.find_opt e.e_witness (fid, src) with
      | Some wss ->
          List.iter
            (fun ws ->
              let taken = dst = ws.ws_w.w_block in
              let ok =
                match ws.ws_w.w_expect with
                | Expect_taken -> taken
                | Expect_skip -> not taken
              in
              if ok then ws.ws_hits <- ws.ws_hits + 1
              else ws.ws_misses <- ws.ws_misses + 1)
            wss
      | None -> ()));
  List.iter (apply_levent e) (Loop_events.feed e.levents ev)

let stmt_rec_of e ctx sid depth first_value =
  let key = { s_ctx = ctx; s_sid = sid } in
  match Hashtbl.find_opt e.stmts key with
  | Some r -> (key, r)
  | None ->
      let r_label =
        (* an integer-class instruction that turns out to carry a float
           (e.g. a Mov copying a loaded float) has no integer value to
           recognise a SCEV on: demote it to label-less *)
        match (label_kind_of e.e_prog sid, first_value) with
        | Lvalue, Some (Vm.Event.F _) -> Lnone
        | k, _ -> k
      in
      let label_dim = match r_label with Lnone -> 0 | Lvalue | Laddr -> 1 in
      let config = e.e_config in
      let r =
        { collector =
            Fold.Collector.create ~cap:config.stmt_cap
              ~max_pieces:config.max_pieces
              ~boundary_splits:config.boundary_splits
              ~per_component:config.per_component_labels ~dim:depth
              ~label_dim ();
          count = 0;
          r_cls =
            (match Vm.Prog.instr_at e.e_prog sid with
            | i -> Vm.Isa.class_of_instr i);
          r_label;
          poisoned = false;
          r_depth = depth }
      in
      Hashtbl.add e.stmts key r;
      (key, r)

let dep_rec_of e key ~src_depth ~dst_depth =
  match Hashtbl.find_opt e.deps key with
  | Some r -> r
  | None ->
      let config = e.e_config in
      let r =
        { d_collector =
            Fold.Collector.create ~cap:config.dep_cap
              ~max_pieces:config.max_pieces
              ~boundary_splits:config.boundary_splits
              ~per_component:config.per_component_labels ~dim:dst_depth
              ~label_dim:src_depth ();
          d_n = 0;
          dr_src_depth = src_depth;
          dr_dst_depth = dst_depth }
      in
      Hashtbl.add e.deps key r;
      r

let on_exec e (ex : Vm.Event.exec) =
  let config = e.e_config in
  let seq = e.seq in
  e.seq <- seq + 1;
  let ctx = Iiv.context_id e.iiv in
  let coords = Iiv.coords e.iiv in
  let depth = Array.length coords in
  (* statically pruned access?  shadow-memory tracking is skipped; the
     dependences are injected from the static plan at finalisation *)
  let pruned_acc =
    match e.e_prune with
    | None -> None
    | Some p -> Hashtbl.find_opt p.sp_resolved ex.sid
  in
  let pruned = Option.is_some pruned_acc in
  if pruned then e.n_pruned <- e.n_pruned + 1;
  if e.lead then begin
    Cct.add_weight e.e_cct 1;
    Sched_tree.record e.e_stree ~ctx_key:ctx (Iiv.context e.iiv) ~weight:1
  end;
  (* statement domain + label *)
  if owns_stmt e ~ctx ~sid:ex.sid then begin
    let _, r = stmt_rec_of e ctx ex.sid depth ex.value in
    r.count <- r.count + 1;
    if Fold.Collector.dim r.collector = depth then begin
      let label =
        match r.r_label with
        | Lnone -> [||]
        | Lvalue -> (
            match ex.value with
            | Some (Vm.Event.I v) -> [| v |]
            | Some (Vm.Event.F _) | None ->
                r.poisoned <- true;
                [| 0 |])
        | Laddr -> (
            match (ex.addr_read, ex.addr_written) with
            | Some a, _ | None, Some a -> [| a |]
            | None, None -> (
                (* an elided trace drops the addresses of pruned
                   accesses; the static plan reconstructs them *)
                match pruned_acc with
                | Some sa when Array.length sa.sa_coefs = depth ->
                    let a = ref sa.sa_base in
                    Array.iteri
                      (fun i c -> a := !a + (c * coords.(i)))
                      sa.sa_coefs;
                    [| !a |]
                | _ ->
                    r.poisoned <- true;
                    [| 0 |]))
      in
      Fold.Collector.add r.collector coords label
    end
    else r.poisoned <- true
  end;
  (* dependences: consult shadows before recording this instruction's
     own writes.  [slot] numbers the potential shadow consultations of
     this event so the sharded merge can restore the sequential order. *)
  let record_dep ~slot kind (o : Shadow.origin) =
    let key =
      { src_sid = o.o_sid; src_ctx = o.o_ctx; dst_sid = ex.sid; dst_ctx = ctx;
        kind }
    in
    if not e.buffer_deps then begin
      let dr =
        dep_rec_of e key ~src_depth:(Array.length o.o_coords) ~dst_depth:depth
      in
      dr.d_n <- dr.d_n + 1;
      if
        Fold.Collector.dim dr.d_collector = depth
        && Array.length o.o_coords = dr.dr_src_depth
      then Fold.Collector.add dr.d_collector coords o.o_coords
    end
    else begin
      let rb =
        match Hashtbl.find_opt e.recs key with
        | Some rb -> rb
        | None ->
            let rb = { pts = []; rn = 0 } in
            Hashtbl.add e.recs key rb;
            rb
      in
      rb.pts <-
        { p_seq = seq; p_slot = slot; p_coords = coords; p_lab = o.o_coords }
        :: rb.pts;
      rb.rn <- rb.rn + 1
    end
  in
  let nreads = List.length ex.reads in
  if config.track_reg_deps then
    List.iteri
      (fun slot reg ->
        if owns_reg e reg then
          match Shadow.last_reg_writer e.shadow ~reg with
          | Some o -> record_dep ~slot Reg_dep o
          | None -> ())
      ex.reads;
  (match ex.addr_read with
  | Some addr when (not pruned) && owns_addr e addr -> (
      match Shadow.last_mem_writer e.shadow ~addr with
      | Some o -> record_dep ~slot:nreads Mem_dep o
      | None -> ())
  | Some _ | None -> ());
  (match ex.addr_written with
  | Some addr when (not pruned) && owns_addr e addr ->
      (if config.track_waw then
         match Shadow.last_mem_writer e.shadow ~addr with
         | Some o -> record_dep ~slot:(nreads + 1) Out_dep o
         | None -> ());
      Shadow.write_mem e.shadow ~addr
        { o_sid = ex.sid; o_ctx = ctx; o_coords = coords }
  | Some _ | None -> ());
  (match ex.writes with
  | Some reg when owns_reg e reg ->
      Shadow.write_reg e.shadow ~reg { o_sid = ex.sid; o_ctx = ctx; o_coords = coords }
  | Some _ | None -> ());
  let words = Shadow.n_shadowed_words e.shadow in
  if words > e.peak_shadow then e.peak_shadow <- words

let callbacks e =
  { Vm.Interp.on_control = (fun ev -> on_control e ev);
    on_exec = (fun ex -> on_exec e ex) }

let start e = List.iter (apply_levent e) (Loop_events.start e.levents)
let finish e = List.iter (apply_levent e) (Loop_events.finish e.levents)

let witness_outcomes e =
  Hashtbl.fold
    (fun _ wss acc ->
      List.map
        (fun ws ->
          { wo_witness = ws.ws_w; wo_hits = ws.ws_hits; wo_misses = ws.ws_misses })
        wss
      @ acc)
    e.e_witness []
  |> List.sort compare

(* Must run after [finish] and before [finalize]: a refuted witness
   means the pruned run skipped shadow tracking it actually needed, so
   no result may be materialised from this engine. *)
let check_witnesses e =
  let os = witness_outcomes e in
  if List.exists (fun o -> o.wo_misses > 0) os then raise (Witness_failure os)

(* ------------------------------------------------------------------ *)
(* Finalisation                                                         *)
(* ------------------------------------------------------------------ *)

let stmt_infos_of e =
  Hashtbl.fold
    (fun sk r acc ->
      let pieces = Fold.Collector.result r.collector in
      let affine = (not r.poisoned) && Fold.Collector.is_affine r.collector in
      { sk;
        cls = r.r_cls;
        s_count = r.count;
        s_pieces = pieces;
        label_kind = r.r_label;
        is_scev = (r.r_label = Lvalue && affine);
        affine_exact = affine;
        depth = r.r_depth }
      :: acc)
    e.stmts []

let scev_set_of stmt_infos =
  let scev_set = Hashtbl.create 64 in
  List.iter
    (fun s -> if s.is_scev then Hashtbl.replace scev_set (s.sk.s_ctx, s.sk.s_sid) ())
    stmt_infos;
  scev_set

(* Re-derive the dependences the pruned run skipped, by simulating the
   static plan: enumerate the resolved accesses in exact execution order
   (the plan is the program's once-executed chain) with a dense
   last-writer table over the address space, feeding every rediscovered
   edge into a fresh collector exactly as the sequential engine would
   have.  Contexts are recovered from the pruned run's own statement
   table — each pruned statement executes under a unique dynamic
   context by construction of the plan (single static call chain). *)
let simulate_plan e (plan : static_plan) =
  let config = e.e_config in
  let ctx_of : (Vm.Isa.Sid.t, int) Hashtbl.t = Hashtbl.create 64 in
  let dyn_count : (Vm.Isa.Sid.t, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (sk : stmt_key) (r : stmt_rec) ->
      if Hashtbl.mem plan.sp_resolved sk.s_sid then begin
        (match Hashtbl.find_opt ctx_of sk.s_sid with
        | Some c when c <> sk.s_ctx ->
            failwith
              "Depprof: pruned statement has multiple dynamic contexts"
        | _ -> Hashtbl.replace ctx_of sk.s_sid sk.s_ctx);
        Hashtbl.replace dyn_count sk.s_sid
          (r.count
          + Option.value ~default:0 (Hashtbl.find_opt dyn_count sk.s_sid))
      end)
    e.stmts;
  let last : (Vm.Isa.Sid.t * int array) option array =
    Array.make (max 1 plan.sp_mem_size) None
  in
  let sim_count : (Vm.Isa.Sid.t, int ref) Hashtbl.t = Hashtbl.create 64 in
  let deps : (dep_key, dep_rec) Hashtbl.t = Hashtbl.create 64 in
  let n_edges = ref 0 in
  let emit kind (src_sid, src_coords) dst_sid dst_coords =
    match (Hashtbl.find_opt ctx_of src_sid, Hashtbl.find_opt ctx_of dst_sid)
    with
    | Some src_ctx, Some dst_ctx ->
        let key = { src_sid; src_ctx; dst_sid; dst_ctx; kind } in
        let dr =
          match Hashtbl.find_opt deps key with
          | Some dr -> dr
          | None ->
              let dr =
                { d_collector =
                    Fold.Collector.create ~cap:config.dep_cap
                      ~max_pieces:config.max_pieces
                      ~boundary_splits:config.boundary_splits
                      ~per_component:config.per_component_labels
                      ~dim:(Array.length dst_coords)
                      ~label_dim:(Array.length src_coords) ();
                  d_n = 0;
                  dr_src_depth = Array.length src_coords;
                  dr_dst_depth = Array.length dst_coords }
              in
              Hashtbl.add deps key dr;
              dr
        in
        dr.d_n <- dr.d_n + 1;
        incr n_edges;
        Fold.Collector.add dr.d_collector dst_coords src_coords
    | _ -> failwith "Depprof: pruned dependence endpoint never executed"
  in
  let coords_buf = ref (Array.make 16 0) in
  let depth = ref 0 in
  let rec go items =
    List.iter
      (fun item ->
        match item with
        | Sacc a ->
            let d = !depth in
            if Array.length a.sa_coefs <> d then
              failwith "Depprof: static plan depth mismatch";
            let coords = Array.sub !coords_buf 0 d in
            let addr = ref a.sa_base in
            Array.iteri (fun i c -> addr := !addr + (c * coords.(i))) a.sa_coefs;
            let addr = !addr in
            if addr < 0 || addr >= Array.length last then
              failwith "Depprof: static plan address out of range";
            (match Hashtbl.find_opt sim_count a.sa_sid with
            | Some r -> incr r
            | None -> Hashtbl.add sim_count a.sa_sid (ref 1));
            if a.sa_store then begin
              (if config.track_waw then
                 match last.(addr) with
                 | Some origin -> emit Out_dep origin a.sa_sid coords
                 | None -> ());
              last.(addr) <- Some (a.sa_sid, coords)
            end
            else begin
              match last.(addr) with
              | Some origin -> emit Mem_dep origin a.sa_sid coords
              | None -> ()
            end
        | Sloop { sl_base; sl_coefs; sl_body } ->
            let d = !depth in
            if Array.length sl_coefs <> d then
              failwith "Depprof: static plan loop depth mismatch";
            if d >= Array.length !coords_buf then begin
              let grown = Array.make (2 * Array.length !coords_buf) 0 in
              Array.blit !coords_buf 0 grown 0 (Array.length !coords_buf);
              coords_buf := grown
            end;
            let trip = loop_trip ~base:sl_base ~coefs:sl_coefs !coords_buf in
            depth := d + 1;
            for k = 0 to trip - 1 do
              !coords_buf.(d) <- k;
              go sl_body
            done;
            depth := d)
      items
  in
  go plan.sp_items;
  (* the simulation must cover exactly the executions the run saw:
     a mismatch means a truncated run or an unsound plan — fail loudly
     rather than inject wrong dependences *)
  Hashtbl.iter
    (fun sid n ->
      let m = Option.value ~default:0 (Hashtbl.find_opt dyn_count sid) in
      if !n <> m then
        failwith
          (Format.asprintf
             "Depprof: static plan simulated %d executions of %a, the run \
              performed %d (truncated run?)"
             !n Vm.Isa.Sid.pp sid m))
    sim_count;
  Hashtbl.iter
    (fun sid m ->
      if m > 0 && not (Hashtbl.mem sim_count sid) then
        failwith "Depprof: pruned access executed but absent from the plan")
    dyn_count;
  (deps, !n_edges)

let obs_events = Obs.Metrics.counter ~help:"exec events seen by the dependence profiler" "ddg.profile.events"
let obs_peak_shadow = Obs.Metrics.gauge ~help:"peak shadow-table entries (live tracked addresses)" "ddg.profile.peak_shadow"
let obs_pruned_accesses = Obs.Metrics.counter ~help:"memory accesses skipped by static pruning" "ddg.profile.pruned_accesses"
let obs_dep_edges = Obs.Metrics.counter ~help:"dynamic dependence edges (before SCEV pruning)" "ddg.result.dep_edges"
let obs_scev_pruned = Obs.Metrics.counter ~help:"dependence edges dropped by SCEV pruning" "ddg.result.scev_pruned_edges"

let finalize e ~run_stats =
  Obs.Span.with_ ~cat:"ddg" "ddg.finalize" @@ fun () ->
  let stmt_infos = stmt_infos_of e in
  let scev_set = scev_set_of stmt_infos in
  (* inject the dependences skipped by static pruning *)
  (match e.e_prune with
  | Some plan when plan.sp_items <> [] ->
      let injected, _ = simulate_plan e plan in
      Hashtbl.iter
        (fun key dr ->
          if Hashtbl.mem e.deps key then
            failwith "Depprof: injected dependence collides with a dynamic one";
          Hashtbl.add e.deps key dr)
        injected
  | _ -> ());
  (* SCEV pruning: drop dependence edges whose producer or consumer is a
     recognised scalar-evolution instruction *)
  let total_dep_edges = ref 0 in
  let pruned = ref 0 in
  let dep_infos =
    Hashtbl.fold
      (fun dk dr acc ->
        total_dep_edges := !total_dep_edges + dr.d_n;
        if
          e.e_config.scev_prune
          && (Hashtbl.mem scev_set (dk.src_ctx, dk.src_sid)
             || Hashtbl.mem scev_set (dk.dst_ctx, dk.dst_sid))
        then begin
          pruned := !pruned + dr.d_n;
          acc
        end
        else
          { dk;
            d_count = dr.d_n;
            d_pieces = Fold.Collector.result dr.d_collector;
            src_depth = dr.dr_src_depth;
            dst_depth = dr.dr_dst_depth }
          :: acc)
      e.deps []
  in
  if Obs.Registry.enabled () then begin
    Obs.Metrics.add obs_events e.seq;
    Obs.Metrics.set_max obs_peak_shadow e.peak_shadow;
    Obs.Metrics.add obs_pruned_accesses e.n_pruned;
    Obs.Metrics.add obs_dep_edges !total_dep_edges;
    Obs.Metrics.add obs_scev_pruned !pruned
  end;
  { stmts = List.sort (fun a b -> compare a.sk b.sk) stmt_infos;
    deps = List.sort (fun a b -> compare a.dk b.dk) dep_infos;
    pruned_dep_edges = !pruned;
    total_dep_edges = !total_dep_edges;
    statically_pruned = e.n_pruned;
    witnesses = witness_outcomes e;
    stree = e.e_stree;
    cct = e.e_cct;
    run_stats;
    structure = e.e_structure }

let profile ?config ?max_steps ?args ?static_prune prog ~structure =
  Obs.Span.with_ ~cat:"ddg" "ddg.profile" @@ fun () ->
  let e =
    make_engine ?config ?static_prune ~shard:0 ~nshards:1 prog ~structure
  in
  start e;
  let run_stats =
    Vm.Interp.run ?max_steps ?args ~callbacks:(callbacks e) prog
  in
  finish e;
  check_witnesses e;
  finalize e ~run_stats

let profile_replay ?config ?static_prune ~feed ~run_stats prog ~structure =
  Obs.Span.with_ ~cat:"ddg" "ddg.profile_replay" @@ fun () ->
  let e =
    make_engine ?config ?static_prune ~shard:0 ~nshards:1 prog ~structure
  in
  start e;
  feed (callbacks e);
  finish e;
  check_witnesses e;
  finalize e ~run_stats

(* The invariant behind [~static_prune]: modulo the schedule tree and
   CCT (shared mutable structures, compared by their own consumers), a
   pruned-and-injected profile is bit-identical to the unpruned one. *)
let equal_result (a : result) (b : result) =
  a.stmts = b.stmts && a.deps = b.deps
  && a.pruned_dep_edges = b.pruned_dep_edges
  && a.total_dep_edges = b.total_dep_edges

(* ------------------------------------------------------------------ *)
(* Sharded profiling: workers + deterministic merge                     *)
(* ------------------------------------------------------------------ *)

module Sharded = struct
  type partial = {
    pt_shard : int;
    pt_nshards : int;
    pt_stmts : stmt_info list;
    pt_recs : (dep_key * dep_point array) list;
    pt_stree : Sched_tree.t;
    pt_cct : Cct.t;
    pt_intern : Iiv.context array option;  (** lead shard only *)
    pt_events : int;  (** exec events replayed *)
    pt_dep_edges : int;  (** dependence edges this shard discovered *)
    pt_peak_shadow : int;
  }

  let worker ?config ~shard ~nshards ~feed prog ~structure =
    if shard < 0 || shard >= nshards then
      invalid_arg "Depprof.Sharded.worker: shard out of range";
    let e =
      make_engine ?config ~buffer_deps:true ~shard ~nshards prog ~structure
    in
    start e;
    feed (callbacks e);
    finish e;
    let pt_recs =
      Hashtbl.fold
        (fun k rb acc -> (k, Array.of_list (List.rev rb.pts)) :: acc)
        e.recs []
    in
    { pt_shard = shard;
      pt_nshards = nshards;
      pt_stmts = stmt_infos_of e;
      pt_recs;
      pt_stree = e.e_stree;
      pt_cct = e.e_cct;
      pt_intern = (if e.lead then Some (Iiv.snapshot_intern_table ()) else None);
      pt_events = e.seq;
      pt_dep_edges =
        Hashtbl.fold (fun _ rb acc -> acc + rb.rn) e.recs 0;
      pt_peak_shadow = e.peak_shadow }

  (* Fold one merged dependence: replay the collector exactly as the
     sequential engine would have — creation dimensioned by the first
     dynamic edge, every edge counted, points added under the same
     depth guards, in global (event, slot) order. *)
  let fold_dep ?(config = default_config) dk (pts : dep_point array) =
    let first = pts.(0) in
    let dst_depth = Array.length first.p_coords in
    let src_depth = Array.length first.p_lab in
    let collector =
      Fold.Collector.create ~cap:config.dep_cap ~max_pieces:config.max_pieces
        ~boundary_splits:config.boundary_splits
        ~per_component:config.per_component_labels ~dim:dst_depth
        ~label_dim:src_depth ()
    in
    Array.iter
      (fun p ->
        if
          Array.length p.p_coords = dst_depth
          && Array.length p.p_lab = src_depth
        then Fold.Collector.add collector p.p_coords p.p_lab)
      pts;
    { dk;
      d_count = Array.length pts;
      d_pieces = Fold.Collector.result collector;
      src_depth;
      dst_depth }

  let default_pmap thunks = List.map (fun f -> f ()) thunks

  let merge ?(config = default_config) ?(pmap = default_pmap) ~partials
      ~run_stats ~structure () =
    (match partials with
    | [] -> invalid_arg "Depprof.Sharded.merge: no partials"
    | _ -> ());
    let lead =
      match List.find_opt (fun p -> p.pt_shard = 0) partials with
      | Some p -> p
      | None -> invalid_arg "Depprof.Sharded.merge: missing lead shard 0"
    in
    (* make the workers' interned context ids resolvable in this domain
       (all workers intern identically; the lead's snapshot stands for
       all) *)
    (match lead.pt_intern with
    | Some snap -> Iiv.restore_intern_table snap
    | None -> ());
    (* statements: shard-disjoint by construction *)
    let stmt_infos = List.concat_map (fun p -> p.pt_stmts) partials in
    let scev_set = scev_set_of stmt_infos in
    (* dependences: gather per-key edge buffers from every shard *)
    let by_key : (dep_key, dep_point array list) Hashtbl.t =
      Hashtbl.create 512
    in
    List.iter
      (fun p ->
        List.iter
          (fun (k, pts) ->
            if Array.length pts > 0 then
              Hashtbl.replace by_key k
                (pts :: Option.value ~default:[] (Hashtbl.find_opt by_key k)))
          p.pt_recs)
      partials;
    let total_dep_edges = ref 0 in
    let pruned = ref 0 in
    let thunks = ref [] in
    Hashtbl.iter
      (fun dk parts ->
        let n = List.fold_left (fun acc a -> acc + Array.length a) 0 parts in
        total_dep_edges := !total_dep_edges + n;
        if
          config.scev_prune
          && (Hashtbl.mem scev_set (dk.src_ctx, dk.src_sid)
             || Hashtbl.mem scev_set (dk.dst_ctx, dk.dst_sid))
        then pruned := !pruned + n
        else begin
          let pts = Array.concat parts in
          (* restore the sequential insertion order: one edge per
             (event, slot), unique within a key *)
          Array.sort
            (fun a b ->
              if a.p_seq <> b.p_seq then compare a.p_seq b.p_seq
              else compare a.p_slot b.p_slot)
            pts;
          thunks := (fun () -> fold_dep ~config dk pts) :: !thunks
        end)
      by_key;
    let dep_infos = pmap !thunks in
    { stmts = List.sort (fun a b -> compare a.sk b.sk) stmt_infos;
      deps = List.sort (fun a b -> compare a.dk b.dk) dep_infos;
      pruned_dep_edges = !pruned;
      total_dep_edges = !total_dep_edges;
      statically_pruned = 0;
      witnesses = [];
      stree = lead.pt_stree;
      cct = lead.pt_cct;
      run_stats;
      structure }
end

let stmt_domain (s : stmt_info) =
  Minisl.Pset.of_polyhedra s.depth
    (List.map (fun (p : Fold.piece) -> p.Fold.dom) s.s_pieces)

let dep_map (d : dep_info) =
  let pieces =
    List.filter_map
      (fun (p : Fold.piece) ->
        match Fold.piece_label_fn p with
        | Some out -> Some { Minisl.Pmap.dom = p.Fold.dom; out }
        | None -> None)
      d.d_pieces
  in
  if List.length pieces = List.length d.d_pieces then
    Some (Minisl.Pmap.make ~in_dim:d.dst_depth ~out_dim:d.src_depth pieces)
  else None
