module L = Cfg.Loopnest
module LE = Loop_events

type claim = {
  cl_fid : int;
  cl_header : int;
  cl_label : string;
  cl_certified : bool;
  cl_private : (int * int) list;
  cl_reductions : Vm.Isa.Sid.t list;
}

type race = {
  rc_addr : int;
  rc_ww : bool;
  rc_src : Vm.Isa.Sid.t;
  rc_src_iter : int;
  rc_src_iiv : int array;
  rc_dst : Vm.Isa.Sid.t;
  rc_dst_iter : int;
  rc_dst_iiv : int array;
}

type claim_stats = {
  cs_claim : claim;
  cs_instances : int;
  cs_iterations : int;
  cs_covered : int;
  cs_races : race list;
  cs_n_races : int;
}

type report = { sr_claims : claim_stats list; sr_accesses : int }

(* One live activation of a claimed loop: the epoch serial tags shadow
   entries so state left over from an earlier activation (or from a
   sibling call) can never produce a cross-instance false positive. *)
type inst = { serial : int; mutable iter : int }

(* Shadow cell per (claim, address): the last write of the current
   epoch plus up to two reads from distinct iterations — two suffice,
   because any write conflicts with a read from *some* other iteration
   iff it conflicts with one of two distinct recorded ones. *)
type cell = {
  mutable cw_ser : int;
  mutable cw_iter : int;
  mutable cw_sid : int;
  mutable cw_iiv : int array;
  mutable r1_ser : int;
  mutable r1_iter : int;
  mutable r1_sid : int;
  mutable r1_iiv : int array;
  mutable r2_ser : int;
  mutable r2_iter : int;
  mutable r2_sid : int;
  mutable r2_iiv : int array;
}

let fresh_cell () =
  {
    cw_ser = -1;
    cw_iter = 0;
    cw_sid = 0;
    cw_iiv = [||];
    r1_ser = -1;
    r1_iter = 0;
    r1_sid = 0;
    r1_iiv = [||];
    r2_ser = -1;
    r2_iter = 0;
    r2_sid = 0;
    r2_iiv = [||];
  }

type cstate = {
  cst_claim : claim;
  red : (Vm.Isa.Sid.t, unit) Hashtbl.t;
  shadow : (int, cell) Hashtbl.t;
  mutable stack : inst list;  (* innermost activation first *)
  mutable instances : int;
  mutable iterations : int;
  mutable covered : int;
  mutable races : race list;  (* reversed *)
  mutable n_reported : int;
  mutable n_races : int;
}

let in_private st addr =
  List.exists
    (fun (lo, hi) -> addr >= lo && addr <= hi)
    st.cst_claim.cl_private

let run ?max_steps ?(max_races = 5) ?args prog ~structure ~claims =
  let iiv = Iiv.create () in
  let serial = ref 0 in
  let states =
    List.map
      (fun cl ->
        let red = Hashtbl.create 8 in
        List.iter (fun s -> Hashtbl.replace red s ()) cl.cl_reductions;
        {
          cst_claim = cl;
          red;
          shadow = Hashtbl.create 1024;
          stack = [];
          instances = 0;
          iterations = 0;
          covered = 0;
          races = [];
          n_reported = 0;
          n_races = 0;
        })
      claims
  in
  let accesses = ref 0 in
  let matching l_fid (loop : L.loop) f =
    List.iter
      (fun st ->
        if st.cst_claim.cl_fid = l_fid && st.cst_claim.cl_header = loop.L.header
        then f st)
      states
  in
  let handle_levent ev =
    Iiv.update iiv ev;
    match ev with
    | LE.Enter (LE.Cfg_loop { l_fid; loop }, _, _) ->
        matching l_fid loop (fun st ->
            incr serial;
            st.stack <- { serial = !serial; iter = 0 } :: st.stack;
            st.instances <- st.instances + 1;
            st.iterations <- st.iterations + 1)
    | LE.Iterate (LE.Cfg_loop { l_fid; loop }, _, _) ->
        matching l_fid loop (fun st ->
            match st.stack with
            | top :: _ ->
                top.iter <- top.iter + 1;
                st.iterations <- st.iterations + 1
            | [] -> ())
    | LE.Exit (LE.Cfg_loop { l_fid; loop }, _, _) ->
        matching l_fid loop (fun st ->
            match st.stack with
            | _ :: rest -> st.stack <- rest
            | [] -> ())
    | _ -> ()
  in
  let record st ~ww ~addr ~src_iter ~src_sid ~src_iiv ~dst_iter ~dst_sid
      ~dst_iiv =
    let covered =
      in_private st addr
      || (Hashtbl.mem st.red src_sid && Hashtbl.mem st.red dst_sid)
    in
    if covered then st.covered <- st.covered + 1
    else begin
      st.n_races <- st.n_races + 1;
      if st.n_reported < max_races then begin
        st.n_reported <- st.n_reported + 1;
        st.races <-
          {
            rc_addr = addr;
            rc_ww = ww;
            rc_src = src_sid;
            rc_src_iter = src_iter;
            rc_src_iiv = src_iiv;
            rc_dst = dst_sid;
            rc_dst_iter = dst_iter;
            rc_dst_iiv = dst_iiv;
          }
          :: st.races
      end
    end
  in
  let access st ~write sid addr coords =
    match st.stack with
    | [] -> ()
    | top :: _ ->
        let cell =
          match Hashtbl.find_opt st.shadow addr with
          | Some c -> c
          | None ->
              let c = fresh_cell () in
              Hashtbl.add st.shadow addr c;
              c
        in
        let ser = top.serial and iter = top.iter in
        if write then begin
          if cell.cw_ser = ser && cell.cw_iter <> iter then
            record st ~ww:true ~addr ~src_iter:cell.cw_iter
              ~src_sid:cell.cw_sid ~src_iiv:cell.cw_iiv ~dst_iter:iter
              ~dst_sid:sid ~dst_iiv:coords;
          if cell.r1_ser = ser && cell.r1_iter <> iter then
            record st ~ww:false ~addr ~src_iter:cell.r1_iter
              ~src_sid:cell.r1_sid ~src_iiv:cell.r1_iiv ~dst_iter:iter
              ~dst_sid:sid ~dst_iiv:coords;
          if cell.r2_ser = ser && cell.r2_iter <> iter then
            record st ~ww:false ~addr ~src_iter:cell.r2_iter
              ~src_sid:cell.r2_sid ~src_iiv:cell.r2_iiv ~dst_iter:iter
              ~dst_sid:sid ~dst_iiv:coords;
          cell.cw_ser <- ser;
          cell.cw_iter <- iter;
          cell.cw_sid <- sid;
          cell.cw_iiv <- coords
        end
        else begin
          if cell.cw_ser = ser && cell.cw_iter <> iter then
            record st ~ww:false ~addr ~src_iter:cell.cw_iter
              ~src_sid:cell.cw_sid ~src_iiv:cell.cw_iiv ~dst_iter:iter
              ~dst_sid:sid ~dst_iiv:coords;
          if cell.r1_ser <> ser then begin
            cell.r1_ser <- ser;
            cell.r1_iter <- iter;
            cell.r1_sid <- sid;
            cell.r1_iiv <- coords;
            cell.r2_ser <- -1
          end
          else if cell.r1_iter <> iter && (cell.r2_ser <> ser || cell.r2_iter <> iter)
          then begin
            cell.r2_ser <- ser;
            cell.r2_iter <- iter;
            cell.r2_sid <- sid;
            cell.r2_iiv <- coords
          end
        end
  in
  let levents = LE.create structure ~main:prog.Vm.Prog.main in
  List.iter handle_levent (LE.start levents);
  let callbacks =
    {
      Vm.Interp.on_control =
        (fun c -> List.iter handle_levent (LE.feed levents c));
      on_exec =
        (fun (e : Vm.Event.exec) ->
          match (e.addr_read, e.addr_written) with
          | None, None -> ()
          | ar, aw ->
              (match ar with Some _ -> incr accesses | None -> ());
              (match aw with Some _ -> incr accesses | None -> ());
              if List.exists (fun st -> st.stack <> []) states then begin
                let coords = Iiv.coords iiv in
                (match ar with
                | Some a ->
                    List.iter
                      (fun st -> access st ~write:false e.sid a coords)
                      states
                | None -> ());
                match aw with
                | Some a ->
                    List.iter
                      (fun st -> access st ~write:true e.sid a coords)
                      states
                | None -> ()
              end);
    }
  in
  ignore (Vm.Interp.run ?max_steps ~callbacks ?args prog);
  let stats =
    List.map
      (fun st ->
        {
          cs_claim = st.cst_claim;
          cs_instances = st.instances;
          cs_iterations = st.iterations;
          cs_covered = st.covered;
          cs_races = List.rev st.races;
          cs_n_races = st.n_races;
        })
      states
  in
  { sr_claims = stats; sr_accesses = !accesses }

let races_on_certified r =
  List.fold_left
    (fun acc cs ->
      if cs.cs_claim.cl_certified then acc + cs.cs_n_races else acc)
    0 r.sr_claims

let ok r = races_on_certified r = 0

let pp_iiv fmt iv =
  Format.fprintf fmt "[%s]"
    (String.concat " " (Array.to_list (Array.map string_of_int iv)))

let pp_race fmt rc =
  Format.fprintf fmt "%s @%d: %a (iter %d, iiv %a) vs %a (iter %d, iiv %a)"
    (if rc.rc_ww then "W/W" else "R/W")
    rc.rc_addr Vm.Isa.Sid.pp rc.rc_src rc.rc_src_iter pp_iiv rc.rc_src_iiv
    Vm.Isa.Sid.pp rc.rc_dst rc.rc_dst_iter pp_iiv rc.rc_dst_iiv

let pp_report fmt r =
  Format.fprintf fmt "race sanitizer: %d claim(s), %d accesses checked@."
    (List.length r.sr_claims) r.sr_accesses;
  List.iter
    (fun cs ->
      Format.fprintf fmt "  %s%s: %d instance(s), %d iteration(s), %d race(s), %d covered@."
        cs.cs_claim.cl_label
        (if cs.cs_claim.cl_certified then " [certified]" else "")
        cs.cs_instances cs.cs_iterations cs.cs_n_races cs.cs_covered;
      List.iter (fun rc -> Format.fprintf fmt "    %a@." pp_race rc) cs.cs_races;
      if cs.cs_n_races > List.length cs.cs_races then
        Format.fprintf fmt "    ... %d more@."
          (cs.cs_n_races - List.length cs.cs_races))
    r.sr_claims
