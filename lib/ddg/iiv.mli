(** Dynamic interprocedural iteration vectors (paper §4, Algorithm 3).

    A dynamic IIV alternates context identifiers and canonical induction
    variables:
    [(CTX_1, iv_1, CTX_2, iv_2, ..., CTX_n)]
    where each CTX is a (possibly empty) stack of calling contexts ending
    in a loop or basic-block identifier, and each iv is a canonical
    induction variable (starts at 0, increments by 1).

    The IIV splits into a non-numerical part — the {e context} — and a
    numerical part — the {e coordinates} (the iv vector); folding (§5) is
    performed per context.  Contexts are interned to small integers. *)

type ctx_id =
  | Cblock of int * int  (** basic block (fid, bid) *)
  | Cloop of int * int  (** CFG loop (fid, loop id) *)
  | Ccomp of int  (** recursive component id *)

val pp_ctx_id : Format.formatter -> ctx_id -> unit

type context = ctx_id list list
(** One context stack per dimension (outermost dimension first, each
    stack outermost element first), plus the trailing statement context
    as the last element. *)

type t
(** Mutable IIV state, updated by loop events. *)

val create : unit -> t
val update : t -> Loop_events.t -> unit
(** Algorithm 3. *)

val depth : t -> int
(** Number of iv dimensions. *)

val coords : t -> int array
(** Current induction-variable vector, outermost first.  Fresh array. *)

val context : t -> context
val context_id : t -> int
(** Interned id of the current context.  The intern table is
    domain-local: domains that perform the same sequence of
    {!context_id} calls (e.g. parallel profilers replaying one event
    stream) assign the same ids independently. *)

val context_of_id : int -> context
(** @raise Not_found for ids not produced by {!context_id} in the
    calling domain (or restored into it). *)

val reset_intern_table : unit -> unit
(** Clear the calling domain's intern table (between independent
    analyses). *)

val snapshot_intern_table : unit -> context array
(** The calling domain's interned contexts, indexed by id. *)

val restore_intern_table : context array -> unit
(** Replace the calling domain's intern table with a snapshot taken (in
    another domain) by {!snapshot_intern_table}, so ids minted there
    resolve here. *)

val pp : ?name:(ctx_id -> string) -> Format.formatter -> t -> unit
(** Renders like the paper: [(M0/L1, 0, A1/L2, 1, B1)]. *)

val pp_context : ?name:(ctx_id -> string) -> Format.formatter -> context -> unit
val to_string : ?name:(ctx_id -> string) -> t -> string
