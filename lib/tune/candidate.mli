(** Schedule-search moves: one structural transformation applied to the
    current program of a beam state.

    Nest steps ({!Sched.Transform.step}) are wrapped in a single-step
    {!Sched.Plan} so the existing legality gate and source rewriter are
    reused unchanged; fuse and distribute address loops by header
    location and go through {!Vm.Hir_rewrite} directly. *)

type action =
  | Nest_step of Sched.Plan.t
      (** exactly one structural step over a profiled nest *)
  | Fuse of Vm.Prog.loc * Vm.Prog.loc
      (** merge two adjacent loops (execution order [first, second]) *)
  | Distribute of Vm.Prog.loc * int
      (** split the loop at [loc] before statement index [at] *)

val describe : action -> string
(** Stable one-line description, e.g.
    ["interchange(d2 <-> d3) @ gemm.c:10 > gemm.c:11 > gemm.c:13"] —
    the step vocabulary of reports, JSON and the determinism tests. *)

val enumerate :
  ?max_nests:int ->
  ?tile_sizes:int list ->
  ?fusion_threshold:float ->
  Vm.Hir.program ->
  Sched.Depanalysis.t ->
  action list * (string * string) list
(** All legal moves from a state: interchange pairs, suggested skews and
    the tile-size ladder over the [max_nests] hottest nests, plus legal
    fusion pairs ({!Sched.Fusion.candidate_pairs}) and distribution
    points of multi-statement loops.  Every returned [Nest_step] has
    already passed {!Sched.Plan.legal} against the profiled direction
    vectors; the statically rejected ones come back separately as
    [(description, reason)] so the search can count them.  The order is
    deterministic. *)

val apply : Vm.Hir.program -> action -> (Vm.Hir.program, string) result
(** Replay the move as a source rewrite. *)

val locality_gain : action -> float
(** Predicted change of the innermost stride-0/1 memory-operation mass
    (in dynamic ops, positive = more spatial locality), from the nest's
    per-dimension stride profile.  Zero for moves that keep the
    innermost dimension. *)
