type config = {
  beam : int;
  depth : int;
  repeat : int;
  seed : int;
  tile_sizes : int list;
  max_nests : int;
  timeout_factor : float;
  margin : float;
  eps : float;
  dep_budget : int;
}

let default =
  { beam = 4;
    depth = 3;
    repeat = 3;
    seed = 42;
    tile_sizes = [ 4; 8; 16; 32 ];
    max_nests = 2;
    timeout_factor = 8.0;
    margin = 1.05;
    eps = 1e-9;
    dep_budget = 1200 }

type status =
  | Pruned
  | Timed_out of string
  | Rejected of string
  | Verified

let status_string = function
  | Pruned -> "pruned"
  | Timed_out _ -> "timeout"
  | Rejected _ -> "rejected"
  | Verified -> "verified"

type cand = {
  cd_level : int;
  cd_steps : string list;
  cd_status : status;
  cd_score : float;
  cd_ops : int option;
  cd_seconds : float option;
  cd_speedup : float option;
}

type best = {
  b_steps : string list;
  b_ops : int;
  b_seconds : float;
  b_speedup : float;
}

type t = {
  r_name : string;
  r_config : config;
  r_identity_ops : int;
  r_identity_seconds : float;
  r_explored : int;
  r_illegal : int;
  r_apply_failed : int;
  r_pruned : int;
  r_measured : int;
  r_timeouts : int;
  r_rejected : int;
  r_verified : int;
  r_cands : cand list;
  r_best : best option;
  r_wall : float;
}

(* A beam state: a concrete (already rewritten) program together with
   its own re-profiled analysis, so the next level enumerates moves
   against what the program has become, not what it used to be. *)
type state = {
  st_hir : Vm.Hir.program;
  st_analysis : Sched.Depanalysis.t;
  st_trail : string list;
}

(* Seeded FNV-1a over the step trail: the deterministic tie-break of the
   stage-1 ranking. *)
let tie_hash seed s =
  let h = ref (2166136261 lxor ((seed + 1) * 16777619)) in
  String.iter
    (fun c -> h := ((!h lxor Char.code c) * 16777619) land 0x3FFFFFFFFFFFF)
    s;
  !h

let locality_weight = 0.5

let median_time ~repeat ~max_steps prog =
  let one () =
    snd (Obs.Clock.timed (fun () -> ignore (Vm.Interp.run ~max_steps prog)))
  in
  Obs.Clock.median (List.init (max 1 repeat) (fun _ -> one ()))

let run ?(config = default) ~name (hir : Vm.Hir.program) =
  Obs.Span.with_ ~cat:"tune" ("tune.search:" ^ name) @@ fun () ->
  let result, wall =
    Obs.Clock.timed @@ fun () ->
    let orig_prog, profile, analysis = Xform.Driver.analyse_hir hir in
    if List.length profile.Ddg.Depprof.deps > config.dep_budget then
      Error
        (Printf.sprintf
           "scheduler bailed out: %d dependence keys exceed the budget of %d"
           (List.length profile.Ddg.Depprof.deps)
           config.dep_budget)
    else begin
      let identity_ops =
        profile.Ddg.Depprof.run_stats.Vm.Interp.dyn_instrs
      in
      let max_steps =
        int_of_float (config.timeout_factor *. float_of_int identity_ops)
        + 10_000
      in
      let identity_seconds =
        Obs.Span.with_ ~cat:"tune" "tune.measure:identity" @@ fun () ->
        median_time ~repeat:config.repeat ~max_steps orig_prog
      in
      (* absolute slack so microsecond-scale workloads cannot flap on
         scheduler jitter *)
      let time_bound = (config.timeout_factor *. identity_seconds) +. 5e-3 in
      let explored = ref 0 in
      let illegal = ref 0 in
      let apply_failed = ref 0 in
      let cands = ref [] in
      let push c = cands := c :: !cands in
      let states =
        ref [ { st_hir = hir; st_analysis = analysis; st_trail = [] } ]
      in
      for level = 1 to config.depth do
        if !states <> [] then begin
          (* stage 0: enumerate legal moves from every beam state *)
          let seen = Hashtbl.create 64 in
          let raw =
            List.concat_map
              (fun st ->
                let acts, rej =
                  Candidate.enumerate ~max_nests:config.max_nests
                    ~tile_sizes:config.tile_sizes st.st_hir st.st_analysis
                in
                explored := !explored + List.length acts + List.length rej;
                illegal := !illegal + List.length rej;
                List.filter_map
                  (fun a ->
                    let steps = st.st_trail @ [ Candidate.describe a ] in
                    let key = String.concat " > " steps in
                    if Hashtbl.mem seen key then None
                    else begin
                      Hashtbl.add seen key ();
                      Some (st, a, steps, key)
                    end)
                  acts)
              !states
          in
          (* stage 1: apply + one uninstrumented probe run; rank on the
             exact operation count minus the predicted locality gain *)
          let probed =
            List.filter_map
              (fun (st, a, steps, key) ->
                match Candidate.apply st.st_hir a with
                | Error _ ->
                    incr apply_failed;
                    None
                | Ok hir' -> (
                    match Vm.Hir.lower hir' with
                    | exception Vm.Hir.Lower_error _ ->
                        incr apply_failed;
                        None
                    | prog' -> (
                        match Vm.Interp.run ~max_steps prog' with
                        | exception Vm.Interp.Trap m ->
                            push
                              { cd_level = level;
                                cd_steps = steps;
                                cd_status =
                                  Timed_out ("probe run: " ^ m);
                                cd_score = infinity;
                                cd_ops = None;
                                cd_seconds = None;
                                cd_speedup = None };
                            None
                        | stats ->
                            let ops = stats.Vm.Interp.dyn_instrs in
                            let score =
                              float_of_int ops
                              -. (locality_weight *. Candidate.locality_gain a)
                            in
                            Some
                              ( (score, tie_hash config.seed key, key),
                                (st, a, steps, hir', prog', ops, score) ))))
              raw
            |> List.stable_sort (fun (ka, _) (kb, _) -> compare ka kb)
            |> List.map snd
          in
          let rec split_at n = function
            | x :: xs when n > 0 ->
                let a, b = split_at (n - 1) xs in
                (x :: a, b)
            | l -> ([], l)
          in
          let survivors, pruned = split_at config.beam probed in
          List.iter
            (fun (_, _, steps, _, _, ops, score) ->
              push
                { cd_level = level;
                  cd_steps = steps;
                  cd_status = Pruned;
                  cd_score = score;
                  cd_ops = Some ops;
                  cd_seconds = None;
                  cd_speedup = None })
            pruned;
          (* stage 2: measure and verify the beam survivors *)
          let next =
            List.filter_map
              (fun (_, _, steps, hir', prog', ops, score) ->
                let finish status seconds =
                  push
                    { cd_level = level;
                      cd_steps = steps;
                      cd_status = status;
                      cd_score = score;
                      cd_ops = Some ops;
                      cd_seconds = seconds;
                      cd_speedup =
                        Option.map (fun s -> identity_seconds /. s) seconds }
                in
                let first, t1 =
                  Obs.Span.with_ ~cat:"tune" "tune.measure" @@ fun () ->
                  Obs.Clock.timed (fun () ->
                      match Vm.Interp.run ~max_steps prog' with
                      | exception Vm.Interp.Trap m -> Error m
                      | _ -> Ok ())
                in
                match first with
                | Error m ->
                    finish (Timed_out ("step budget: " ^ m)) None;
                    None
                | Ok () when t1 > time_bound ->
                    finish
                      (Timed_out
                         (Printf.sprintf
                            "first run took %.2fx the identity median"
                            (t1 /. identity_seconds)))
                      None;
                    None
                | Ok () ->
                    let seconds =
                      Obs.Span.with_ ~cat:"tune" "tune.measure" @@ fun () ->
                      if config.repeat <= 1 then t1
                      else
                        Obs.Clock.median
                          (t1
                          :: List.init (config.repeat - 1) (fun _ ->
                                 snd
                                   (Obs.Clock.timed (fun () ->
                                        ignore
                                          (Vm.Interp.run ~max_steps prog')))))
                    in
                    let oracle =
                      Obs.Span.with_ ~cat:"tune" "tune.verify" @@ fun () ->
                      Xform.Driver.oracle ~eps:config.eps ~max_steps
                        ~orig_prog hir'
                    in
                    if not oracle.Xform.Driver.or_ok then begin
                      let reason =
                        if not oracle.Xform.Driver.or_equiv.Xform.Verify.eq_ok
                        then "observable equivalence failed"
                        else "a dependence was reversed (re-folded DDG)"
                      in
                      finish (Rejected reason) None;
                      None
                    end
                    else begin
                      finish Verified (Some seconds);
                      match oracle.Xform.Driver.or_analysis with
                      | Some xa ->
                          Some
                            { st_hir = hir';
                              st_analysis = xa;
                              st_trail = steps }
                      | None -> None
                    end)
              survivors
          in
          states := next
        end
      done;
      let cands = List.rev !cands in
      let count p = List.length (List.filter p cands) in
      let best =
        List.filter_map
          (fun c ->
            match (c.cd_status, c.cd_seconds, c.cd_ops) with
            | Verified, Some s, Some ops ->
                Some
                  { b_steps = c.cd_steps;
                    b_ops = ops;
                    b_seconds = s;
                    b_speedup = identity_seconds /. s }
            | _ -> None)
          cands
        |> List.fold_left
             (fun acc b ->
               match acc with
               | Some a when a.b_seconds <= b.b_seconds -> acc
               | _ -> Some b)
             None
        |> Option.map (fun b ->
               if b.b_speedup >= config.margin then Some b else None)
        |> Option.join
      in
      Ok
        { r_name = name;
          r_config = config;
          r_identity_ops = identity_ops;
          r_identity_seconds = identity_seconds;
          r_explored = !explored;
          r_illegal = !illegal;
          r_apply_failed = !apply_failed;
          r_pruned = count (fun c -> c.cd_status = Pruned);
          r_measured =
            count (fun c ->
                match c.cd_status with
                | Verified | Rejected _ -> true
                | Timed_out _ -> c.cd_ops <> None
                | Pruned -> false);
          r_timeouts =
            count (fun c ->
                match c.cd_status with Timed_out _ -> true | _ -> false);
          r_rejected =
            count (fun c ->
                match c.cd_status with Rejected _ -> true | _ -> false);
          r_verified = count (fun c -> c.cd_status = Verified);
          r_cands = cands;
          r_best = best;
          r_wall = 0.0 }
    end
  in
  Result.map (fun r -> { r with r_wall = wall }) result
