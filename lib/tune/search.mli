(** Verified beam search over the legal schedule space — the driver that
    closes the PGO loop.

    Each beam state is a concrete rewritten program with its own
    re-profiled dependence analysis, so step sequences compose across
    levels (fuse two outer loops, then fuse the inner loops the merge
    made adjacent).  Candidate moves come from {!Candidate.enumerate}
    (already gated by the profiled direction vectors); ranking is a
    two-stage cost model:

    + a cheap deterministic stage — the exact dynamic operation count of
      one uninstrumented probe run, minus a locality bonus from the
      per-dimension stride-0/1 profile — orders all legal moves;
    + the [beam] best are then measured (median of [repeat] monotonic
      wall-clock runs, program lowered outside the timer) and
      differentially verified ({!Xform.Driver.oracle}); only verified
      candidates survive into the next level or the final report.

    Ties in the first stage break on a seeded hash of the step trail, so
    a fixed [seed] reproduces the search exactly. *)

type config = {
  beam : int;  (** beam width *)
  depth : int;  (** maximum composed steps *)
  repeat : int;  (** timed runs per measured candidate *)
  seed : int;  (** tie-break seed *)
  tile_sizes : int list;  (** tile-size ladder *)
  max_nests : int;  (** hottest nests considered per state *)
  timeout_factor : float;
      (** skip a candidate whose first timed run exceeds this multiple
          of the identity median (also bounds interpreter steps) *)
  margin : float;
      (** minimum measured speedup for a candidate to displace the
          identity schedule as "best" *)
  eps : float;  (** float tolerance of the differential verifier *)
  dep_budget : int;
      (** bail out like the scheduler when the profile has more
          dependence keys than this *)
}

val default : config

type status =
  | Pruned  (** legal but ranked below the beam cut — never measured *)
  | Timed_out of string  (** skipped: run bound exceeded (recorded) *)
  | Rejected of string  (** a verification oracle failed *)
  | Verified

val status_string : status -> string

type cand = {
  cd_level : int;  (** 1-based search level *)
  cd_steps : string list;  (** action trail from identity, outer first *)
  cd_status : status;
  cd_score : float;  (** stage-1 predicted cost (lower is better) *)
  cd_ops : int option;  (** probe-run dynamic operations (None: the
                            probe itself hit the step bound) *)
  cd_seconds : float option;  (** measured median, when measured *)
  cd_speedup : float option;  (** identity median / candidate median *)
}

type best = {
  b_steps : string list;
  b_ops : int;
  b_seconds : float;
  b_speedup : float;
}

type t = {
  r_name : string;
  r_config : config;
  r_identity_ops : int;
  r_identity_seconds : float;
  r_explored : int;  (** all moves the enumerator produced *)
  r_illegal : int;  (** statically rejected by the direction vectors *)
  r_apply_failed : int;  (** not expressible as a source rewrite *)
  r_pruned : int;
  r_measured : int;
  r_timeouts : int;
  r_rejected : int;
  r_verified : int;
  r_cands : cand list;  (** deterministic order: level, then rank *)
  r_best : best option;  (** [None]: the identity schedule is retained *)
  r_wall : float;  (** total search wall seconds *)
}

val run : ?config:config -> name:string -> Vm.Hir.program -> (t, string) result
(** Search the schedule space of [hir].  [Error] reports a scheduler
    bail-out (dependence budget), never a verification failure — those
    are per-candidate statuses. *)
