module J = Obs.Json_emit

let truncate n s = if String.length s <= n then s else String.sub s 0 (n - 1) ^ "…"

let status_cell (c : Search.cand) =
  match c.cd_status with
  | Search.Verified -> "VERIFIED"
  | Search.Pruned -> "pruned"
  | Search.Timed_out m -> truncate 40 ("timeout: " ^ m)
  | Search.Rejected m -> truncate 40 ("REJECTED: " ^ m)

let us = function
  | None -> "-"
  | Some s -> Printf.sprintf "%.1f" (s *. 1e6)

let speedup_cell = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.2fx" x

let render fmt (r : Search.t) =
  Format.fprintf fmt
    "== autotune %s: explored %d (%d illegal, %d not expressible), %d \
     measured, %d verified ==@\n\
     identity: %d ops, %.1f us median of %d@\n"
    r.Search.r_name r.Search.r_explored r.Search.r_illegal
    r.Search.r_apply_failed r.Search.r_measured r.Search.r_verified
    r.Search.r_identity_ops
    (r.Search.r_identity_seconds *. 1e6)
    r.Search.r_config.Search.repeat;
  let rows =
    List.map
      (fun (c : Search.cand) ->
        [ string_of_int c.Search.cd_level;
          String.concat " ; " c.Search.cd_steps;
          status_cell c;
          (match c.Search.cd_ops with
          | Some o -> string_of_int o
          | None -> "-");
          us c.Search.cd_seconds;
          speedup_cell c.Search.cd_speedup ])
      r.Search.r_cands
  in
  Format.fprintf fmt "%s"
    (Report.Texttable.render
       ~header:[ "lvl"; "steps"; "status"; "ops"; "us"; "speedup" ]
       rows);
  match r.Search.r_best with
  | None ->
      Format.fprintf fmt
        "best: identity retained (no verified candidate beat identity by \
         >= %.0f%%)@\n"
        ((r.Search.r_config.Search.margin -. 1.0) *. 100.)
  | Some b ->
      Format.fprintf fmt "best: %s  (%.2fx speedup, %d ops, verified)@\n"
        (String.concat " ; " b.Search.b_steps)
        b.Search.b_speedup b.Search.b_ops

(* ------------------------------------------------------------------ *)
(* Search-tree flame graph                                             *)
(* ------------------------------------------------------------------ *)

let color (c : Search.cand) =
  match c.Search.cd_status with
  | Search.Verified -> "#8bc34a"
  | Search.Rejected _ -> "#e57373"
  | Search.Timed_out _ -> "#ffb74d"
  | Search.Pruned -> "#b0bec5"

let frame_of (r : Search.t) =
  let key steps = String.concat "\x00" steps in
  let children : (string, Search.cand list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (c : Search.cand) ->
      let parent =
        key (List.filteri (fun i _ -> i < List.length c.Search.cd_steps - 1)
               c.Search.cd_steps)
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt children parent) in
      Hashtbl.replace children parent (prev @ [ c ]))
    r.Search.r_cands;
  let rec node (c : Search.cand) =
    let kids =
      Option.value ~default:[]
        (Hashtbl.find_opt children (key c.Search.cd_steps))
      |> List.map node
    in
    let w =
      1
      + List.fold_left
          (fun acc (f : Report.Flamegraph.frame) ->
            acc + f.Report.Flamegraph.fr_weight)
          0 kids
    in
    let label =
      match List.rev c.Search.cd_steps with last :: _ -> last | [] -> "?"
    in
    { Report.Flamegraph.fr_label = label;
      fr_title =
        Printf.sprintf "%s [%s]%s" label
          (Search.status_string c.Search.cd_status)
          (match c.Search.cd_speedup with
          | Some x -> Printf.sprintf " %.2fx" x
          | None -> "");
      fr_weight = w;
      fr_color = color c;
      fr_children = kids }
  in
  let top =
    Option.value ~default:[] (Hashtbl.find_opt children (key []))
    |> List.map node
  in
  let w =
    1
    + List.fold_left
        (fun acc (f : Report.Flamegraph.frame) ->
          acc + f.Report.Flamegraph.fr_weight)
        0 top
  in
  { Report.Flamegraph.fr_label = r.Search.r_name ^ " (identity)";
    fr_title =
      Printf.sprintf "%s: %d candidates explored, %d verified"
        r.Search.r_name r.Search.r_explored r.Search.r_verified;
    fr_weight = w;
    fr_color = "#64b5f6";
    fr_children = top }

let svg_of ?width (r : Search.t) =
  Report.Flamegraph.frames_to_svg ?width
    ~title:(Printf.sprintf "autotune search tree: %s" r.Search.r_name)
    (frame_of r)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let opt f = function None -> J.Null | Some x -> f x

let cand_json (c : Search.cand) =
  let reason =
    match c.Search.cd_status with
    | Search.Timed_out m | Search.Rejected m -> J.Str m
    | Search.Verified | Search.Pruned -> J.Null
  in
  J.Obj
    [ ("level", J.Int c.Search.cd_level);
      ("steps", J.List (List.map (fun s -> J.Str s) c.Search.cd_steps));
      ("status", J.Str (Search.status_string c.Search.cd_status));
      ("reason", reason);
      ("score", J.Float c.Search.cd_score);
      ("ops", opt (fun o -> J.Int o) c.Search.cd_ops);
      ("seconds", opt (fun s -> J.Float s) c.Search.cd_seconds);
      ("speedup", opt (fun s -> J.Float s) c.Search.cd_speedup) ]

let best_json (b : Search.best) =
  J.Obj
    [ ("steps", J.List (List.map (fun s -> J.Str s) b.Search.b_steps));
      ("ops", J.Int b.Search.b_ops);
      ("seconds", J.Float b.Search.b_seconds);
      ("speedup", J.Float b.Search.b_speedup);
      ("verified", J.Bool true) ]

let workload_json ~name = function
  | Error e -> J.Obj [ ("name", J.Str name); ("error", J.Str e) ]
  | Ok (r : Search.t) ->
      J.Obj
        [ ("name", J.Str r.Search.r_name);
          ("identity_ops", J.Int r.Search.r_identity_ops);
          ("identity_seconds", J.Float r.Search.r_identity_seconds);
          ("explored", J.Int r.Search.r_explored);
          ("illegal", J.Int r.Search.r_illegal);
          ("apply_failed", J.Int r.Search.r_apply_failed);
          ("pruned", J.Int r.Search.r_pruned);
          ("measured", J.Int r.Search.r_measured);
          ("timeouts", J.Int r.Search.r_timeouts);
          ("rejected", J.Int r.Search.r_rejected);
          ("verified", J.Int r.Search.r_verified);
          ("wall_seconds", J.Float r.Search.r_wall);
          ("best", opt best_json r.Search.r_best);
          ("candidates", J.List (List.map cand_json r.Search.r_cands)) ]

let config_json (c : Search.config) =
  J.Obj
    [ ("beam", J.Int c.Search.beam);
      ("depth", J.Int c.Search.depth);
      ("repeat", J.Int c.Search.repeat);
      ("seed", J.Int c.Search.seed);
      ("tile_sizes", J.List (List.map (fun s -> J.Int s) c.Search.tile_sizes));
      ("max_nests", J.Int c.Search.max_nests);
      ("timeout_factor", J.Float c.Search.timeout_factor);
      ("margin", J.Float c.Search.margin) ]

let improved results =
  List.length
    (List.filter
       (fun (_, r) ->
         match r with Ok s -> s.Search.r_best <> None | Error _ -> false)
       results)

let suite_json ~config results =
  let bests =
    List.filter_map
      (fun (_, r) ->
        match r with Ok s -> s.Search.r_best | Error _ -> None)
      results
  in
  J.Obj
    (J.schema_header ~schema_version:Obs.Schemas.autotune
    @ [ ("bench", J.Str "autotune");
        ("config", config_json config);
        ("workloads",
         J.List
           (List.map (fun (name, r) -> workload_json ~name r) results));
        ("workloads_improved", J.Int (improved results));
        ("all_best_verified",
         (* every shipped best passed both oracles by construction; the
            gate recomputes it anyway *)
         J.Bool (List.for_all (fun (_ : Search.best) -> true) bests)) ])
