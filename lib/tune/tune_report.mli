(** Rendering of autotuner results: per-workload best-schedule table
    ({!Report.Texttable}), search-tree flame graph, and the
    [BENCH_autotune.json] document in the unified
    {!Obs.Json_emit.schema_header} schema. *)

val render : Format.formatter -> Search.t -> unit
(** Candidate table (level, steps, status, ops, time, speedup) followed
    by the best-schedule verdict. *)

val frame_of : Search.t -> Report.Flamegraph.frame
(** The explored search tree as a frame tree: node weight is subtree
    size, colour is the candidate's fate (verified / rejected / pruned /
    timed out). *)

val svg_of : ?width:int -> Search.t -> string

val workload_json :
  name:string -> (Search.t, string) result -> Obs.Json_emit.t
(** One entry of the ["workloads"] array; a bail-out becomes
    [{"name": ..., "error": ...}]. *)

val suite_json :
  config:Search.config ->
  (string * (Search.t, string) result) list ->
  Obs.Json_emit.t
(** The whole [BENCH_autotune.json] document: schema header, search
    configuration, per-workload results, and the two suite-level gates
    ([workloads_improved], [all_best_verified]). *)

val improved : (string * (Search.t, string) result) list -> int
(** Workloads whose best verified schedule beat identity by the
    configured margin. *)
