module D = Sched.Depanalysis
module T = Sched.Transform

type action =
  | Nest_step of Sched.Plan.t
  | Fuse of Vm.Prog.loc * Vm.Prog.loc
  | Distribute of Vm.Prog.loc * int

let loc_string (l : Vm.Prog.loc) =
  Printf.sprintf "%s:%d" l.Vm.Prog.file l.Vm.Prog.line

let describe = function
  | Nest_step plan ->
      let step =
        match plan.Sched.Plan.p_steps with
        | [ s ] -> Format.asprintf "%a" T.pp_step s
        | ss ->
            String.concat "; "
              (List.map (Format.asprintf "%a" T.pp_step) ss)
      in
      Printf.sprintf "%s @ %s" step (Sched.Plan.describe plan)
  | Fuse (a, b) -> Printf.sprintf "fuse(%s + %s)" (loc_string a) (loc_string b)
  | Distribute (l, at) ->
      Printf.sprintf "distribute(%s @ stmt %d)" (loc_string l) at

(* A single-step plan over a profiled nest: same targets a suggestion
   plan would carry, so [Xform.Apply] replays it unchanged. *)
let plan_of_step (t : D.t) (n : D.nest_info) step =
  let locs = Sched.Plan.nest_dim_locs t n in
  let targets =
    Array.init n.D.ndepth (fun d ->
        { Sched.Plan.t_loc = locs.(d);
          t_fid = Sched.Plan.dim_fid n.D.npath d })
  in
  { Sched.Plan.p_nest = n;
    p_targets = targets;
    p_steps = [ step ];
    p_stride01 = T.stride01_profile n;
    p_interchange =
      (match step with T.Interchange (a, b) -> Some (a, b) | _ -> None);
    p_weight = n.D.nweight }

(* Direct-statement count of the loop body at [l], for distribution
   points.  The first located match wins (rewrites keep locations
   unique enough for the suite; ambiguity only costs a skipped
   candidate). *)
let body_length (hir : Vm.Hir.program) (l : Vm.Prog.loc) =
  let found = ref None in
  let rec stmts ss = List.iter stmt ss
  and stmt = function
    | Vm.Hir.For fl ->
        (match fl.Vm.Hir.floc with
        | Some fl_loc when !found = None && Vm.Hir_rewrite.same_loc fl_loc l ->
            found := Some (List.length fl.Vm.Hir.body)
        | _ -> ());
        stmts fl.Vm.Hir.body
    | Vm.Hir.While { wbody; _ } -> stmts wbody
    | Vm.Hir.If (_, a, b) ->
        stmts a;
        stmts b
    | Vm.Hir.Let _ | Vm.Hir.Store _ | Vm.Hir.CallS _ | Vm.Hir.Return _
    | Vm.Hir.Break ->
        ()
  in
  List.iter (fun (f : Vm.Hir.fundef) -> stmts f.Vm.Hir.body) hir.Vm.Hir.funs;
  !found

let enumerate ?(max_nests = 2) ?(tile_sizes = [ 4; 8; 16; 32 ])
    ?(fusion_threshold = 0.02) (hir : Vm.Hir.program) (t : D.t) =
  let rejected = ref [] in
  let nests =
    List.filter (fun (n : D.nest_info) -> n.D.ndepth >= 2) t.D.nests
    |> List.stable_sort (fun (a : D.nest_info) b ->
           compare b.D.nweight a.D.nweight)
    |> List.filteri (fun i _ -> i < max_nests)
  in
  let nest_actions (n : D.nest_info) =
    let locs = Sched.Plan.nest_dim_locs t n in
    let fid d = Sched.Plan.dim_fid n.D.npath (d - 1) in
    let located d = d >= 1 && d <= n.D.ndepth && locs.(d - 1) <> None in
    let same_fun a b = located a && located b && fid a = fid b && fid a <> None in
    let steps = ref [] in
    for a = 1 to n.D.ndepth - 1 do
      for b = a + 1 to n.D.ndepth do
        if same_fun a b then steps := T.Interchange (a, b) :: !steps
      done
    done;
    List.iter
      (fun (band : D.band) ->
        List.iter
          (fun (o, i, f) ->
            if same_fun o i then steps := T.Skew (o, i, f) :: !steps)
          band.D.b_skews;
        if band.D.b_to > band.D.b_from then begin
          let ok = ref true in
          for d = band.D.b_from to band.D.b_to do
            if not (same_fun band.D.b_from d) then ok := false
          done;
          if !ok then
            List.iter
              (fun s -> steps := T.Tile (band.D.b_from, band.D.b_to, s) :: !steps)
              tile_sizes
        end)
      n.D.bands;
    List.rev !steps
    |> List.filter_map (fun step ->
           let plan = plan_of_step t n step in
           let lg = Sched.Plan.legal t plan in
           if lg.Sched.Plan.lg_ok then Some (Nest_step plan)
           else begin
             rejected :=
               ( describe (Nest_step plan),
                 "static legality: the profiled direction vectors forbid \
                  the step" )
               :: !rejected;
             None
           end)
  in
  let nest_acts = List.concat_map nest_actions nests in
  let fuse_acts =
    Sched.Fusion.candidate_pairs ~threshold:fusion_threshold t
    |> List.map (fun ((a, b), _) -> Fuse (a, b))
  in
  let dist_acts =
    let min_w = max 1 (t.D.total_ops / 50) in
    List.filter_map
      (fun (l : D.loop_info) ->
        match l.D.header_loc with
        | Some hl when l.D.lweight >= min_w -> (
            match body_length hir hl with
            | Some len when len >= 2 -> Some (hl, len)
            | _ -> None)
        | _ -> None)
      t.D.loops
    |> List.concat_map (fun (hl, len) ->
           List.init (min (len - 1) 3) (fun i -> Distribute (hl, i + 1)))
  in
  (nest_acts @ fuse_acts @ dist_acts, List.rev !rejected)

let apply hir = function
  | Nest_step plan -> (
      match Xform.Apply.apply_plan hir plan with
      | Error e -> Error e
      | Ok o when not o.Xform.Apply.o_structural -> (
          match o.Xform.Apply.o_skipped with
          | (_, reason) :: _ -> Error reason
          | [] -> Error "no structural rewrite applied")
      | Ok o -> Ok o.Xform.Apply.o_hir)
  | Fuse (first, second) -> Vm.Hir_rewrite.fuse hir ~first ~second
  | Distribute (loc, at) -> Vm.Hir_rewrite.distribute hir ~loc ~at

let locality_gain = function
  | Nest_step plan -> (
      let s01 = plan.Sched.Plan.p_stride01 in
      let depth = Array.length s01 in
      match plan.Sched.Plan.p_steps with
      | [ Sched.Transform.Interchange (a, b) ] when b = depth && a >= 1 ->
          (s01.(a - 1) -. s01.(depth - 1))
          *. float_of_int plan.Sched.Plan.p_weight
      | _ -> 0.0)
  | Fuse _ | Distribute _ -> 0.0
