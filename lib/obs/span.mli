(** Hierarchical pipeline spans.

    A span measures one phase of the pipeline: monotonic wall time
    ({!Clock}), GC minor/major words allocated during the phase and the
    peak-heap watermark at its end.  Spans nest per domain (each domain
    has its own stack, so [Stream.Par_profile] workers record their own
    subtrees tagged with their domain id); finished top-level spans land
    in a process-global list read by the exporters.

    Every operation is a no-op while {!Registry.enabled} is false. *)

exception Unbalanced of string
(** Raised by {!exit_} when the name does not match the innermost open
    span, or no span is open. *)

type t = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;  (** domain id that recorded the span *)
  sp_start_ns : int;
  mutable sp_dur_ns : int;
  mutable sp_minor_words : float;  (** minor words allocated inside *)
  mutable sp_major_words : float;
  mutable sp_top_heap_words : int;  (** [Gc] watermark at span end *)
  mutable sp_children : t list;  (** in start order once closed *)
  mutable sp_args : (string * string) list;
}

val enter : ?cat:string -> string -> unit
val exit_ : string -> unit

val with_ : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span; the span closes even if [f]
    raises.  The preferred instrumentation form. *)

val add_arg : string -> string -> unit
(** Attach a key/value to the innermost open span (shown in the Chrome
    trace [args] and the summary). *)

val roots : unit -> t list
(** Completed top-level spans, across all domains, ordered by start
    time (ties broken by name — deterministic). *)

val depth : unit -> int
(** Open spans on the calling domain's stack (0 outside any span). *)

val reset : unit -> unit
(** Drop completed spans and the calling domain's stack. *)
