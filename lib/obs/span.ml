exception Unbalanced of string

type t = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_start_ns : int;
  mutable sp_dur_ns : int;
  mutable sp_minor_words : float;
  mutable sp_major_words : float;
  mutable sp_top_heap_words : int;
  mutable sp_children : t list;
  mutable sp_args : (string * string) list;
}

type frame = { f_span : t; f_minor0 : float; f_major0 : float }

(* per-domain open-span stack *)
let stack_key = Domain.DLS.new_key (fun () -> ref ([] : frame list))

let completed_mutex = Mutex.create ()
let completed : t list ref = ref []

let enter ?(cat = "polyprof") name =
  if Registry.enabled () then begin
    let q = Gc.quick_stat () in
    let sp =
      { sp_name = name;
        sp_cat = cat;
        sp_tid = (Domain.self () :> int);
        sp_start_ns = Clock.now_ns ();
        sp_dur_ns = 0;
        sp_minor_words = 0.0;
        sp_major_words = 0.0;
        sp_top_heap_words = 0;
        sp_children = [];
        sp_args = [] }
    in
    let st = Domain.DLS.get stack_key in
    st :=
      { f_span = sp; f_minor0 = q.Gc.minor_words; f_major0 = q.Gc.major_words }
      :: !st
  end

let exit_ name =
  if Registry.enabled () then begin
    let st = Domain.DLS.get stack_key in
    match !st with
    | [] -> raise (Unbalanced (Printf.sprintf "exit %S: no open span" name))
    | f :: rest ->
        if f.f_span.sp_name <> name then
          raise
            (Unbalanced
               (Printf.sprintf "exit %S: innermost open span is %S" name
                  f.f_span.sp_name));
        st := rest;
        let sp = f.f_span in
        let q = Gc.quick_stat () in
        sp.sp_dur_ns <- Clock.now_ns () - sp.sp_start_ns;
        sp.sp_minor_words <- q.Gc.minor_words -. f.f_minor0;
        sp.sp_major_words <- q.Gc.major_words -. f.f_major0;
        sp.sp_top_heap_words <- q.Gc.top_heap_words;
        sp.sp_children <- List.rev sp.sp_children;
        sp.sp_args <- List.rev sp.sp_args;
        (match rest with
        | parent :: _ ->
            parent.f_span.sp_children <- sp :: parent.f_span.sp_children
        | [] ->
            Mutex.protect completed_mutex (fun () -> completed := sp :: !completed))
  end

let with_ ?cat name f =
  if not (Registry.enabled ()) then f ()
  else begin
    enter ?cat name;
    Fun.protect ~finally:(fun () -> exit_ name) f
  end

let add_arg k v =
  if Registry.enabled () then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | f :: _ -> f.f_span.sp_args <- (k, v) :: f.f_span.sp_args

let roots () =
  let l = Mutex.protect completed_mutex (fun () -> !completed) in
  List.sort
    (fun a b ->
      match compare a.sp_start_ns b.sp_start_ns with
      | 0 -> compare a.sp_name b.sp_name
      | c -> c)
    l

let depth () = List.length !(Domain.DLS.get stack_key)

let reset () =
  Mutex.protect completed_mutex (fun () -> completed := []);
  Domain.DLS.set stack_key (ref [])
