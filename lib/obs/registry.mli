(** Process-global telemetry switch.

    The whole [Obs] subsystem is a no-op until enabled: spans and metric
    updates check this flag first, so instrumented code paths cost one
    atomic load and a branch when telemetry is off.  The flag starts
    from the [POLYPROF_TELEMETRY] environment variable (any value other
    than ["" | "0" | "false" | "no" | "off"] enables it) and can be
    flipped by the [--telemetry] CLI flag. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val env_var : string
(** ["POLYPROF_TELEMETRY"]. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run [f] with telemetry forced on, restoring the previous state
    (used by tests and the dedicated [telemetry] subcommand). *)
