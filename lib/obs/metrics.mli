(** Counters, gauges and histograms with per-domain sinks.

    Metric {e descriptors} are process-global and registered once by
    name; metric {e values} accumulate in a lock-free per-domain
    {!Sink.t} (plain mutable state reached through [Domain.DLS] — no
    atomics on the update path).  Worker domains call {!flush_domain}
    before exiting; {!snapshot} merges all retired sinks plus the
    calling domain's live one.

    The merge is deterministic and order-insensitive by construction:
    counters and histogram buckets add (integer sums commute), gauges
    are high-watermarks (merge by [max]), histogram [min]/[max] merge by
    [min]/[max].  Merging the same updates split across 1, 2 or 5 sinks
    in any order yields bit-identical totals — property-tested in
    [test_obs.ml]. *)

type kind = Counter | Gauge | Histogram

type desc = private {
  d_id : int;
  d_name : string;  (** dotted, e.g. ["stream.encode.bytes"] *)
  d_kind : kind;
  d_help : string;
}

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
val gauge : ?help:string -> string -> gauge
val histogram : ?help:string -> string -> histogram
(** Register (or look up) a metric descriptor.  Re-registering the same
    name returns the existing descriptor; re-registering it with a
    different kind raises [Invalid_argument]. *)

val add : counter -> int -> unit
(** Add to the calling domain's sink.  No-op while telemetry is
    disabled. *)

val set_max : gauge -> int -> unit
(** Raise the gauge high-watermark.  No-op while disabled. *)

val observe : histogram -> int -> unit
(** Record a sample (clamped to [0] if negative) into power-of-two
    buckets.  No-op while disabled. *)

(** {2 Snapshots} *)

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;  (** meaningless when [h_count = 0] *)
  h_max : int;
  h_buckets : int array;  (** bucket [k] counts samples with at most
                              [k] significant bits, i.e. values in
                              [(2{^k-1}, 2{^k}-1]]; bucket [0] counts
                              zeros *)
}

type value = Vint of int | Vhist of hist_summary

type snapshot = (desc * value) list
(** Sorted by metric name; metrics never updated are omitted. *)

val n_buckets : int
val bucket_le : int -> int
(** [bucket_le k] is the inclusive upper bound of bucket [k]
    ([2{^k} - 1]), the Prometheus [le] label. *)

val quantile : hist_summary -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0..1]) of the observed
    samples from the power-of-two buckets: linear interpolation inside
    the bucket holding the target rank, clamped to the exact observed
    [h_min]/[h_max].  The coarse buckets bound the error to one power
    of two.  [0.0] when the histogram is empty. *)

val quantiles : hist_summary -> (float * float) list
(** The p50/p90/p99 summary derived with {!quantile}. *)

val default_quantiles : float list
(** [[0.5; 0.9; 0.99]] — the quantiles every surface (text tables,
    Prometheus summary lines, [polyprof telemetry]) reports. *)

val snapshot : unit -> snapshot
(** Merge every retired sink and the calling domain's live sink. *)

val flush_domain : unit -> unit
(** Retire the calling domain's sink into the global pool (call before
    a worker domain exits; its DLS state is unreachable afterwards). *)

val compact : unit -> unit
(** Merge all retired sinks into one.  A long-running process whose
    workers {!flush_domain} after every task (the serve daemon) calls
    this periodically so {!snapshot} stays O(1) in the number of retired
    sinks instead of growing with total tasks served. *)

val reset : unit -> unit
(** Drop all accumulated values (descriptors survive) — test isolation
    and the start of an explicitly-scoped telemetry run. *)

(** {2 Explicit sinks}

    The deterministic-merge core, usable directly (and property-tested)
    without the domain-local plumbing. *)

module Sink : sig
  type t

  val create : unit -> t
  val add : t -> counter -> int -> unit
  val set_max : t -> gauge -> int -> unit
  val observe : t -> histogram -> int -> unit
  val merge_into : dst:t -> t -> unit
  val snapshot_of : t list -> snapshot
end
