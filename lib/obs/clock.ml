external stub_monotonic_ns : unit -> int = "polyprof_obs_monotonic_ns"
  [@@noalloc]

let stub_ok = stub_monotonic_ns () >= 0

(* Fallback when CLOCK_MONOTONIC is unavailable: gettimeofday clamped to
   never decrease.  The clamp is per-process best effort (a data race
   between domains can at worst briefly re-observe an older clamp, never
   produce a decreasing pair within one domain's reads). *)
let fallback_last = Atomic.make 0

let fallback_ns () =
  let ns = int_of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let last = Atomic.get fallback_last in
    if ns <= last then last
    else if Atomic.compare_and_set fallback_last last ns then ns
    else clamp ()
  in
  clamp ()

let now_ns () = if stub_ok then stub_monotonic_ns () else fallback_ns ()
let monotonic () = float_of_int (now_ns ()) *. 1e-9

let timed f =
  let t0 = monotonic () in
  let r = f () in
  (r, monotonic () -. t0)

let median = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2)
      else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

let wall_iso8601 () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec
