(** Chrome trace-event export (the JSON Array / "traceEvents" format
    understood by Perfetto, chrome://tracing and speedscope).

    Spans become ["ph": "X"] complete events carrying their GC stats in
    [args]; metric snapshots become ["ph": "C"] counter samples.  All
    timestamps are microseconds on the monotonic span clock. *)

val to_json :
  ?process_name:string ->
  ?metrics:Metrics.snapshot ->
  Span.t list ->
  Json_emit.t

val to_string :
  ?process_name:string -> ?metrics:Metrics.snapshot -> Span.t list -> string

val write_file :
  path:string ->
  ?process_name:string ->
  ?metrics:Metrics.snapshot ->
  Span.t list ->
  unit

val validate_file : string -> (int, string) result
(** Re-read an emitted trace and check it is well-formed JSON with a
    [traceEvents] array; returns the event count.  The no-[yojson]
    stand-in for an external round-trip check. *)
