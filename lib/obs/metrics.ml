type kind = Counter | Gauge | Histogram

type desc = { d_id : int; d_name : string; d_kind : kind; d_help : string }
type counter = desc
type gauge = desc
type histogram = desc

(* ------------------------------------------------------------------ *)
(* Descriptor registry (process-global, mutex-protected; registration
   happens at module init or first use, never on hot paths)            *)
(* ------------------------------------------------------------------ *)

let reg_mutex = Mutex.create ()
let by_name : (string, desc) Hashtbl.t = Hashtbl.create 64
let all_descs : desc list ref = ref []
let next_id = ref 0

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let register ?(help = "") name kind =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some d ->
          if d.d_kind <> kind then
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics: %s already registered as a %s (wanted %s)" name
                 (kind_name d.d_kind) (kind_name kind));
          d
      | None ->
          let d =
            { d_id = !next_id; d_name = name; d_kind = kind; d_help = help }
          in
          incr next_id;
          Hashtbl.add by_name name d;
          all_descs := d :: !all_descs;
          d)

let descs_sorted () =
  List.sort
    (fun a b -> compare a.d_name b.d_name)
    (Mutex.protect reg_mutex (fun () -> !all_descs))

let counter ?help name = register ?help name Counter
let gauge ?help name = register ?help name Gauge
let histogram ?help name = register ?help name Histogram

(* ------------------------------------------------------------------ *)
(* Histogram buckets: power-of-two.  Bucket 0 holds zeros; bucket k
   (k >= 1) holds values with exactly k significant bits, i.e. the
   range [2^(k-1), 2^k - 1].                                           *)
(* ------------------------------------------------------------------ *)

let n_buckets = 63
let bucket_le k = if k >= 62 then max_int else (1 lsl k) - 1

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and x = ref v in
    while !x > 0 do
      incr i;
      x := !x lsr 1
    done;
    min (n_buckets - 1) !i
  end

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : int array;
}

type value = Vint of int | Vhist of hist_summary
type snapshot = (desc * value) list

(* Quantile estimate from the cumulative power-of-two buckets: find the
   bucket holding the target rank, interpolate linearly inside its value
   range, clamp to the exact observed [min, max].  The bucket bounds
   limit the error to one power of two — property-tested against known
   synthetic distributions.                                            *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      Float.max 1.0
        (Float.min (float_of_int h.h_count)
           (Float.ceil (q *. float_of_int h.h_count)))
    in
    let rec find k cum =
      if k >= n_buckets then float_of_int h.h_max
      else begin
        let here = h.h_buckets.(k) in
        let cum' = cum + here in
        if here > 0 && float_of_int cum' >= rank then begin
          let lo = if k = 0 then 0.0 else float_of_int (bucket_le (k - 1) + 1) in
          let hi = if k = 0 then 0.0 else float_of_int (bucket_le k) in
          let frac = (rank -. float_of_int cum) /. float_of_int here in
          lo +. (frac *. (hi -. lo))
        end
        else find (k + 1) cum'
      end
    in
    let est = find 0 0 in
    Float.min (float_of_int h.h_max) (Float.max (float_of_int h.h_min) est)
  end

let default_quantiles = [ 0.5; 0.9; 0.99 ]
let quantiles h = List.map (fun q -> (q, quantile h q)) default_quantiles

(* ------------------------------------------------------------------ *)
(* Sinks: plain mutable per-domain accumulators.  Merge semantics per
   kind: counters and histogram buckets add, gauges take the max —
   every operation is commutative and associative on ints, so merging
   any partition of the same updates in any order is bit-identical.    *)
(* ------------------------------------------------------------------ *)

module Sink = struct
  type hstate = {
    mutable hn : int;
    mutable hsum : int;
    mutable hmin : int;
    mutable hmax : int;
    hbuckets : int array;
  }

  type cell = Cnone | Cint of int ref | Chist of hstate

  type t = { mutable cells : cell array }

  let create () = { cells = [||] }

  let ensure t id =
    let n = Array.length t.cells in
    if id >= n then begin
      let grown = Array.make (max 16 (max (id + 1) (2 * n))) Cnone in
      Array.blit t.cells 0 grown 0 n;
      t.cells <- grown
    end

  let int_cell t (d : desc) =
    ensure t d.d_id;
    match t.cells.(d.d_id) with
    | Cint r -> r
    | Cnone ->
        let r = ref 0 in
        t.cells.(d.d_id) <- Cint r;
        r
    | Chist _ -> invalid_arg "Obs.Metrics: histogram used as counter/gauge"

  let hist_cell t (d : desc) =
    ensure t d.d_id;
    match t.cells.(d.d_id) with
    | Chist h -> h
    | Cnone ->
        let h =
          { hn = 0; hsum = 0; hmin = max_int; hmax = min_int;
            hbuckets = Array.make n_buckets 0 }
        in
        t.cells.(d.d_id) <- Chist h;
        h
    | Cint _ -> invalid_arg "Obs.Metrics: counter/gauge used as histogram"

  let add t (c : counter) n =
    let r = int_cell t c in
    r := !r + n

  let set_max t (g : gauge) v =
    let r = int_cell t g in
    if v > !r then r := v

  let observe t (h : histogram) v =
    let v = max 0 v in
    let s = hist_cell t h in
    s.hn <- s.hn + 1;
    s.hsum <- s.hsum + v;
    if v < s.hmin then s.hmin <- v;
    if v > s.hmax then s.hmax <- v;
    let b = bucket_of v in
    s.hbuckets.(b) <- s.hbuckets.(b) + 1

  let merge_cell ~is_gauge dst id cell =
    match cell with
    | Cnone -> ()
    | Cint r -> (
        ensure dst id;
        match dst.cells.(id) with
        | Cint r' -> if is_gauge id then r' := max !r' !r else r' := !r' + !r
        | Cnone -> dst.cells.(id) <- Cint (ref !r)
        | Chist _ -> invalid_arg "Obs.Metrics.merge: kind mismatch")
    | Chist h -> (
        ensure dst id;
        match dst.cells.(id) with
        | Chist h' ->
            h'.hn <- h'.hn + h.hn;
            h'.hsum <- h'.hsum + h.hsum;
            if h.hmin < h'.hmin then h'.hmin <- h.hmin;
            if h.hmax > h'.hmax then h'.hmax <- h.hmax;
            Array.iteri
              (fun b n -> h'.hbuckets.(b) <- h'.hbuckets.(b) + n)
              h.hbuckets
        | Cnone ->
            dst.cells.(id) <-
              Chist
                { hn = h.hn; hsum = h.hsum; hmin = h.hmin; hmax = h.hmax;
                  hbuckets = Array.copy h.hbuckets }
        | Cint _ -> invalid_arg "Obs.Metrics.merge: kind mismatch")

  let gauge_lookup () =
    let descs = Mutex.protect reg_mutex (fun () -> !all_descs) in
    let n = List.fold_left (fun a d -> max a (d.d_id + 1)) 0 descs in
    let tbl = Array.make n false in
    List.iter (fun d -> if d.d_kind = Gauge then tbl.(d.d_id) <- true) descs;
    fun id -> id < n && tbl.(id)

  let merge_into ~dst src =
    let is_gauge = gauge_lookup () in
    Array.iteri (merge_cell ~is_gauge dst) src.cells

  let snapshot_of sinks =
    let merged = create () in
    List.iter (fun src -> merge_into ~dst:merged src) sinks;
    List.filter_map
      (fun d ->
        if d.d_id >= Array.length merged.cells then None
        else
          match merged.cells.(d.d_id) with
          | Cnone -> None
          | Cint r -> Some (d, Vint !r)
          | Chist h ->
              Some
                ( d,
                  Vhist
                    { h_count = h.hn; h_sum = h.hsum; h_min = h.hmin;
                      h_max = h.hmax; h_buckets = Array.copy h.hbuckets } ))
      (descs_sorted ())
end

(* ------------------------------------------------------------------ *)
(* Per-domain plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let dls_key = Domain.DLS.new_key (fun () -> Sink.create ())
let current () = Domain.DLS.get dls_key

let retired_mutex = Mutex.create ()
let retired : Sink.t list ref = ref []

let flush_domain () =
  let s = current () in
  Domain.DLS.set dls_key (Sink.create ());
  Mutex.protect retired_mutex (fun () -> retired := s :: !retired)

let snapshot () =
  let sinks =
    Mutex.protect retired_mutex (fun () -> !retired) @ [ current () ]
  in
  Sink.snapshot_of sinks

let compact () =
  Mutex.protect retired_mutex (fun () ->
      match !retired with
      | [] | [ _ ] -> ()
      | sinks ->
          let merged = Sink.create () in
          List.iter (fun s -> Sink.merge_into ~dst:merged s) sinks;
          retired := [ merged ])

let reset () =
  Mutex.protect retired_mutex (fun () -> retired := []);
  Domain.DLS.set dls_key (Sink.create ())

let add c n = if Registry.enabled () then Sink.add (current ()) c n
let set_max g v = if Registry.enabled () then Sink.set_max (current ()) g v
let observe h v = if Registry.enabled () then Sink.observe (current ()) h v
