(** Registry of every machine-readable report schema the tree emits.

    Each [BENCH_*.json] / [--json] emitter stamps its output with a
    [schema_version] through {!Json_emit.schema_header}; this module is
    the single place those version numbers live, so [polyprof version]
    and the daemon's [/version] endpoint can report them and clients/CI
    can check daemon/schema compatibility without parsing any report. *)

type t = {
  s_name : string;  (** emitter name, e.g. ["stream"] *)
  s_file : string;  (** the artifact it writes, e.g. ["BENCH_stream.json"] *)
  s_version : int;
}

val stream : int
val staticdep : int
val obs : int
val autotune : int
val overhead : int
val parcheck : int
val serve : int

val perfhist : int
(** [bench/history/*.jsonl] perf-history lines ({!Perfhist}). *)

val log : int
(** JSON-lines log records ({!Log.to_jsonl}). *)

val all : t list
(** Every emitter, sorted by name. *)
