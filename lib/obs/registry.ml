let env_var = "POLYPROF_TELEMETRY"

let env_enabled =
  match Sys.getenv_opt env_var with
  | None -> false
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "" | "0" | "false" | "no" | "off" -> false
      | _ -> true)

let state = Atomic.make env_enabled
let enabled () = Atomic.get state
let enable () = Atomic.set state true
let disable () = Atomic.set state false

let with_enabled f =
  let before = Atomic.get state in
  Atomic.set state true;
  Fun.protect ~finally:(fun () -> Atomic.set state before) f
