(** Schema-versioned performance history and noise-aware regression
    diffing — the store behind [bench * --json --record] and the
    comparator behind [polyprof perfdiff].

    A benchmark document ([BENCH_*.json]) is {!flatten}ed into dotted
    numeric metrics and appended as one JSON line to
    [<dir>/<bench>.jsonl].  {!baseline} condenses the last [window]
    recorded runs into a per-metric median, and {!diff} compares a
    current run against it with per-metric direction and tolerance
    bands ({!classify}), so a single noisy wall-clock sample does not
    page anyone while a real 25% regression trips the gate. *)

val flatten : Json_emit.t -> (string * float) list
(** Numeric leaves of a JSON document as sorted [(dotted-path, value)]
    pairs.  Objects contribute their field names, list elements the
    value of their ["name"] member when present (index otherwise);
    booleans map to 0/1; strings and nulls — including
    [generated_utc] — are dropped. *)

(** {2 History store} *)

type entry = {
  e_utc : string;  (** [generated_utc] of the recorded run, or [""] *)
  e_metrics : (string * float) list;
}

val history_file : dir:string -> bench:string -> string
val record : dir:string -> bench:string -> Json_emit.t -> unit
(** Flatten [doc] and append it to [<dir>/<bench>.jsonl] (creating the
    directory as needed), stamped with {!Schemas.perfhist} and the
    current UTC time. *)

val load : dir:string -> bench:string -> entry list
(** Recorded runs, oldest first.  Malformed or foreign-schema lines are
    skipped; a missing file is an empty history. *)

val baseline : window:int -> entry list -> (string * float) list
(** Per-metric median over the last [window] entries. *)

(** {2 Comparison} *)

type direction = Lower_better | Higher_better | Info_only

val classify : string -> direction * float
(** Direction and relative tolerance for a metric path, by substring:
    wall-clock/latency and throughput metrics get 25%, allocation and
    byte counts 15%, deterministic pruning fractions 2%; unrecognized
    paths (and configuration echoes like [schema_version]) are
    [Info_only] and never gate. *)

type verdict = Within | Regressed | Improved | New_metric | Missing | Info

type row = {
  r_metric : string;
  r_dir : direction;
  r_tol : float;  (** relative tolerance, e.g. [0.25] *)
  r_base : float option;
  r_cur : float option;
  r_delta_pct : float option;  (** [(cur - base) / |base| * 100] *)
  r_verdict : verdict;
}

val diff :
  baseline:(string * float) list -> current:(string * float) list -> row list
(** One row per metric present on either side, sorted by name.  A
    metric is [Regressed]/[Improved] only when its delta exceeds the
    tolerance in the bad/good direction; zero baselines compare
    exactly. *)

val regressions : row list -> row list
(** The rows that should fail a gating run. *)

val direction_name : direction -> string
val verdict_name : verdict -> string
val row_json : row -> Json_emit.t
