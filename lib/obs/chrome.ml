module J = Json_emit

let us_of_ns ns = float_of_int ns /. 1e3

let rec span_events acc (sp : Span.t) =
  let args =
    [ ("minor_words", J.Float sp.Span.sp_minor_words);
      ("major_words", J.Float sp.Span.sp_major_words);
      ("top_heap_words", J.Int sp.Span.sp_top_heap_words) ]
    @ List.map (fun (k, v) -> (k, J.Str v)) sp.Span.sp_args
  in
  let ev =
    J.Obj
      [ ("name", J.Str sp.Span.sp_name);
        ("cat", J.Str sp.Span.sp_cat);
        ("ph", J.Str "X");
        ("ts", J.Float (us_of_ns sp.Span.sp_start_ns));
        ("dur", J.Float (us_of_ns sp.Span.sp_dur_ns));
        ("pid", J.Int 1);
        ("tid", J.Int sp.Span.sp_tid);
        ("args", J.Obj args) ]
  in
  List.fold_left span_events (ev :: acc) sp.Span.sp_children

let metric_events ~ts (snap : Metrics.snapshot) =
  List.filter_map
    (fun ((d : Metrics.desc), v) ->
      let value =
        match v with
        | Metrics.Vint n -> Some (J.Int n)
        | Metrics.Vhist h -> Some (J.Int h.Metrics.h_sum)
      in
      Option.map
        (fun value ->
          J.Obj
            [ ("name", J.Str d.Metrics.d_name);
              ("cat", J.Str "metrics");
              ("ph", J.Str "C");
              ("ts", J.Float (us_of_ns ts));
              ("pid", J.Int 1);
              ("args", J.Obj [ ("value", value) ]) ])
        value)
    snap

let to_json ?(process_name = "polyprof") ?(metrics = []) spans =
  let meta =
    J.Obj
      [ ("name", J.Str "process_name");
        ("ph", J.Str "M");
        ("pid", J.Int 1);
        ("args", J.Obj [ ("name", J.Str process_name) ]) ]
  in
  let span_evs = List.rev (List.fold_left span_events [] spans) in
  let last_ts =
    List.fold_left
      (fun acc (sp : Span.t) -> max acc (sp.Span.sp_start_ns + sp.Span.sp_dur_ns))
      0 spans
  in
  J.Obj
    [ ("traceEvents", J.List ((meta :: span_evs) @ metric_events ~ts:last_ts metrics));
      ("displayTimeUnit", J.Str "ms") ]

let to_string ?process_name ?metrics spans =
  J.to_string ~pretty:true (to_json ?process_name ?metrics spans)

let write_file ~path ?process_name ?metrics spans =
  J.write_file ~pretty:true path (to_json ?process_name ?metrics spans)

let validate_file path =
  match J.parse_file path with
  | Error m -> Error m
  | Ok doc -> (
      match J.member "traceEvents" doc with
      | Some (J.List evs) ->
          if
            List.for_all
              (fun ev -> match J.member "ph" ev with Some (J.Str _) -> true | _ -> false)
              evs
          then Ok (List.length evs)
          else Error "traceEvents entry without a \"ph\" phase field"
      | Some _ -> Error "\"traceEvents\" is not an array"
      | None -> Error "no \"traceEvents\" member")
