(** Leveled structured logging on per-domain ring buffers.

    Each domain emits into its own fixed-capacity ring reached through
    [Domain.DLS] — no locks or atomics on the record path beyond one
    global sequence counter — so workers never contend while logging.
    A collector (the serve daemon's accept loop, [flush_to] in the CLI)
    drains every ring and merges the records into one stream ordered by
    the global sequence number, which makes concurrent emission from N
    domains merge deterministically.

    While logging is off (the default), {!emit} is a single atomic load
    and an integer compare, preserving the telemetry-off overhead
    budget.  Correlation fields ([trace_id], [job_id]) attach to every
    record emitted inside {!with_context}; {!sample} thins high-rate
    events.  Records render to JSON-lines (via {!Json_emit}, schema
    registered as {!Schemas.log}) or a human-readable line. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option

val set_level : level option -> unit
(** [None] turns logging off (the default unless the [POLYPROF_LOG]
    environment variable names a level). *)

val current_level : unit -> level option
val enabled : level -> bool

val env_var : string
(** ["POLYPROF_LOG"]: [debug]/[info]/[warn]/[error] enable that
    threshold at startup; unset, [0], [off], [false], [no] keep logging
    disabled. *)

(** {2 Records} *)

type record = {
  r_seq : int;  (** globally unique, monotone across all domains *)
  r_ts_ns : int;  (** {!Clock.now_ns} at emission *)
  r_domain : int;
  r_level : level;
  r_event : string;  (** dotted event name, e.g. ["serve.job.done"] *)
  r_msg : string;
  r_fields : (string * string) list;  (** context fields first *)
}

(** {2 Emission} *)

val emit :
  level -> string -> ?fields:(string * string) list -> string -> unit

val logf :
  level ->
  string ->
  ?fields:(string * string) list ->
  ('a, unit, string, unit) format4 ->
  'a

val debug :
  ?fields:(string * string) list ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a

val info :
  ?fields:(string * string) list ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a

val warn :
  ?fields:(string * string) list ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a

val error :
  ?fields:(string * string) list ->
  string ->
  ('a, unit, string, unit) format4 ->
  'a

val with_context : (string * string) list -> (unit -> 'a) -> 'a
(** Stamp the given fields (e.g. [("trace_id", t); ("job_id", i)]) onto
    every record the calling domain emits inside the callback.
    Contexts nest; fields accumulate outermost-first. *)

val sample : every:int -> string -> bool
(** [sample ~every key] admits the first and then every [every]-th
    occurrence of [key] on the calling domain — guard high-rate events
    with it before logging. *)

(** {2 Collection} *)

val drain : unit -> record list
(** Drain every domain's ring and return the merged records sorted by
    sequence number.  Records emitted concurrently with the drain may
    land in the next drain; call at quiesce points for exact results. *)

val dropped : unit -> int
(** Total records lost to ring wraparound since the last {!reset}. *)

val reset : unit -> unit
(** Drop buffered records, forget foreign rings and clear the calling
    domain's context — test isolation. *)

val set_capacity : int -> unit
(** Ring capacity for domains that have not logged yet (default
    4096). *)

(** {2 Sinks} *)

val to_json : record -> Json_emit.t
val to_jsonl : record -> string
(** One JSON object per record, single line; [trace_id]/[job_id] fields
    are promoted to top level, other fields nest under ["fields"]. *)

val to_human : record -> string

type sink = Human of out_channel | Jsonl of out_channel

val flush_to : sink list -> unit
(** Drain once and write every record to every sink (then flush the
    channels).  With no sinks the records are drained and discarded. *)

(** {2 Rings}

    The wraparound core, usable directly (and unit-tested) without the
    domain-local plumbing. *)

module Ring : sig
  type t

  val create : capacity:int -> t
  val push : t -> record -> unit
  val drain : t -> record list
  val dropped : t -> int
end
