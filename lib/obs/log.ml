type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Global threshold: one atomic int, 4 = off.  The emit hot path is a
   single atomic load and an int compare when logging is off — the same
   discipline as Registry.enabled for metrics/spans, so the
   telemetry-off overhead ladder is unaffected.                        *)
(* ------------------------------------------------------------------ *)

let off_rank = 4
let env_var = "POLYPROF_LOG"

let env_threshold =
  match Sys.getenv_opt env_var with
  | None -> off_rank
  | Some v -> (
      match level_of_string v with
      | Some l -> level_rank l
      | None -> (
          match String.lowercase_ascii (String.trim v) with
          | "" | "0" | "off" | "false" | "no" -> off_rank
          | _ -> level_rank Info))

let threshold = Atomic.make env_threshold

let set_level = function
  | None -> Atomic.set threshold off_rank
  | Some l -> Atomic.set threshold (level_rank l)

let current_level () =
  match Atomic.get threshold with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let enabled l = level_rank l >= Atomic.get threshold

(* ------------------------------------------------------------------ *)
(* Records and rings                                                   *)
(* ------------------------------------------------------------------ *)

type record = {
  r_seq : int;  (** globally unique, monotone across all domains *)
  r_ts_ns : int;
  r_domain : int;
  r_level : level;
  r_event : string;
  r_msg : string;
  r_fields : (string * string) list;
}

module Ring = struct
  type t = {
    buf : record option array;
    capacity : int;
    mutable first : int;  (* index of the oldest live record *)
    mutable len : int;
    mutable dropped : int;
  }

  let create ~capacity =
    let capacity = max 1 capacity in
    { buf = Array.make capacity None; capacity; first = 0; len = 0;
      dropped = 0 }

  let push t r =
    if t.len < t.capacity then begin
      t.buf.((t.first + t.len) mod t.capacity) <- Some r;
      t.len <- t.len + 1
    end
    else begin
      (* full: overwrite the oldest and count the loss *)
      t.buf.(t.first) <- Some r;
      t.first <- (t.first + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end

  let dropped t = t.dropped

  let drain t =
    let out = ref [] in
    for i = t.len - 1 downto 0 do
      match t.buf.((t.first + i) mod t.capacity) with
      | Some r -> out := r :: !out
      | None -> ()
    done;
    Array.fill t.buf 0 t.capacity None;
    t.first <- 0;
    t.len <- 0;
    !out
end

(* ------------------------------------------------------------------ *)
(* Per-domain plumbing.  Each domain owns one ring reached through DLS
   (lock-free emit); rings self-register in a global mutex-protected
   list so a collector on any domain can drain them all.  Cross-domain
   drains read another domain's mutable ring state without a lock: each
   slot holds an immutable record, so the worst case is a dropped or
   duplicated record in one snapshot, never a torn one — collectors run
   at quiesce points (daemon accept loop, after Domain.join in tests). *)
(* ------------------------------------------------------------------ *)

let default_capacity = Atomic.make 4096
let set_capacity n = Atomic.set default_capacity (max 1 n)

let rings_mutex = Mutex.create ()
let rings : Ring.t list ref = ref []

let new_ring () =
  let r = Ring.create ~capacity:(Atomic.get default_capacity) in
  Mutex.protect rings_mutex (fun () -> rings := r :: !rings);
  r

let dls_ring = Domain.DLS.new_key new_ring
let current_ring () = Domain.DLS.get dls_ring

let seq_counter = Atomic.make 0

(* correlation context: fields stamped onto every record the calling
   domain emits while the context is active *)
let dls_ctx : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_context fields f =
  let ctx = Domain.DLS.get dls_ctx in
  let saved = !ctx in
  ctx := saved @ fields;
  Fun.protect ~finally:(fun () -> ctx := saved) f

let context () = !(Domain.DLS.get dls_ctx)

(* sampling for high-rate events: admit the 1st and then every [every]th
   occurrence of [key] on the calling domain *)
let dls_samples : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let sample ~every key =
  if every <= 1 then true
  else begin
    let tbl = Domain.DLS.get dls_samples in
    let n = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
    Hashtbl.replace tbl key (n + 1);
    n mod every = 0
  end

let emit level event ?(fields = []) msg =
  if enabled level then begin
    let seq = Atomic.fetch_and_add seq_counter 1 in
    let r =
      { r_seq = seq;
        r_ts_ns = Clock.now_ns ();
        r_domain = (Domain.self () :> int);
        r_level = level;
        r_event = event;
        r_msg = msg;
        r_fields = context () @ fields }
    in
    Ring.push (current_ring ()) r
  end

let logf level event ?fields fmt =
  Printf.ksprintf (fun msg -> emit level event ?fields msg) fmt

let debug ?fields event fmt = logf Debug event ?fields fmt
let info ?fields event fmt = logf Info event ?fields fmt
let warn ?fields event fmt = logf Warn event ?fields fmt
let error ?fields event fmt = logf Error event ?fields fmt

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

let by_seq a b = compare a.r_seq b.r_seq

let drain () =
  let rs = Mutex.protect rings_mutex (fun () -> !rings) in
  List.sort by_seq (List.concat_map Ring.drain rs)

let dropped () =
  let rs = Mutex.protect rings_mutex (fun () -> !rings) in
  List.fold_left (fun acc r -> acc + Ring.dropped r) 0 rs

let reset () =
  ignore (drain ());
  Mutex.protect rings_mutex (fun () -> rings := []);
  Domain.DLS.set dls_ring (new_ring ());
  Domain.DLS.set dls_ctx (ref [])

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let to_json r =
  let module J = Json_emit in
  let known k = List.mem k [ "trace_id"; "job_id" ] in
  let promoted =
    List.filter_map
      (fun (k, v) -> if known k then Some (k, J.Str v) else None)
      r.r_fields
  in
  let rest =
    List.filter_map
      (fun (k, v) -> if known k then None else Some (k, J.Str v))
      r.r_fields
  in
  J.Obj
    ([ ("schema_version", J.Int Schemas.log);
       ("seq", J.Int r.r_seq);
       ("ts_ns", J.Int r.r_ts_ns);
       ("level", J.Str (level_name r.r_level));
       ("domain", J.Int r.r_domain);
       ("event", J.Str r.r_event);
       ("msg", J.Str r.r_msg) ]
    @ promoted
    @ (match rest with [] -> [] | fs -> [ ("fields", J.Obj fs) ]))

let to_jsonl r = Json_emit.to_string (to_json r)

let to_human r =
  let fields =
    match r.r_fields with
    | [] -> ""
    | fs ->
        " "
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fs)
  in
  Printf.sprintf "[%8.3f] %-5s d%d %s: %s%s"
    (float_of_int r.r_ts_ns /. 1e9)
    (level_name r.r_level) r.r_domain r.r_event r.r_msg fields

type sink = Human of out_channel | Jsonl of out_channel

let write_record sink r =
  match sink with
  | Human oc ->
      output_string oc (to_human r);
      output_char oc '\n'
  | Jsonl oc ->
      output_string oc (to_jsonl r);
      output_char oc '\n'

let flush_to sinks =
  match sinks with
  | [] -> ignore (drain ())
  | _ ->
      let records = drain () in
      if records <> [] then begin
        List.iter
          (fun sink ->
            List.iter (write_record sink) records;
            match sink with Human oc | Jsonl oc -> flush oc)
          sinks
      end
