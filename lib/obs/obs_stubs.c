/* Monotonic wall-clock stub for Obs.Clock: CLOCK_MONOTONIC via
   clock_gettime, returned as untagged nanoseconds (63-bit OCaml ints
   hold ~146 years of nanoseconds, so no boxing and no allocation).
   Returns -1 where the POSIX clock is unavailable; the ML side then
   falls back to a clamped gettimeofday. */

#include <caml/mlvalues.h>

#if defined(_WIN32)
#include <windows.h>
#else
#include <time.h>
#endif

CAMLprim value polyprof_obs_monotonic_ns(value unit)
{
  (void)unit;
#if defined(_WIN32)
  {
    static LARGE_INTEGER freq;
    LARGE_INTEGER now;
    if (freq.QuadPart == 0) QueryPerformanceFrequency(&freq);
    if (freq.QuadPart != 0 && QueryPerformanceCounter(&now))
      return Val_long((intnat)((double)now.QuadPart * 1e9
                               / (double)freq.QuadPart));
  }
#elif defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
  }
#endif
  return Val_long(-1);
}
