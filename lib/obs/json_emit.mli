(** Minimal JSON emission and validation.

    One shared emitter for every machine-readable report the tree
    produces ([bench stream --json], [bench staticdep --json],
    [bench obs --json], the Chrome trace exporter, the CLI [--json]
    outputs), replacing per-call-site [Printf] JSON with its scattered
    escaping bugs.  The container ships no [yojson], so a small
    recursive-descent {!parse} is included for round-trip validation of
    emitted documents (used by [make obs-smoke] and the tests). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** RFC 8259 string escaping, including the quotes. *)

val to_string : ?pretty:bool -> t -> string
val to_channel : ?pretty:bool -> out_channel -> t -> unit
val write_file : ?pretty:bool -> string -> t -> unit

val parse : string -> (t, string) result
(** Strict parser for the subset this module emits (all of JSON except
    exotic number forms; numbers with [. e E] parse as [Float], others
    as [Int]).  Returns a description of the first defect. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] elsewhere. *)

val strip_fields : names:string list -> t -> t
(** Recursively remove every object field whose key is in [names], at
    any depth. *)

val equal_ignoring : ignore:string list -> t -> t -> bool
(** Structural equality after {!strip_fields} — the comparison every
    rerun-stability consumer (perf diffing, the serve result cache,
    stable benchmark rewrites) uses to disregard volatile fields like
    [generated_utc]. *)

val write_file_stable : ?pretty:bool -> ?ignore:string list -> string -> t -> bool
(** Write [v] to [path] unless the file already holds a document equal
    up to the ignored fields (default [["generated_utc"]]), in which
    case the file is left byte-untouched so reruns diff clean.  Returns
    [true] when the file was (re)written. *)

val schema_header : schema_version:int -> (string * t) list
(** The uniform report preamble every benchmark JSON carries:
    [schema_version], [host_cores]
    ([Domain.recommended_domain_count]) and [generated_utc]
    (ISO-8601). *)
