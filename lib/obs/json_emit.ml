type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite ->
      "null" (* NaN / infinities have no JSON representation *)
  | _ ->
      (* prefer the shortest representation that round-trips *)
      let shorter = Printf.sprintf "%.12g" f in
      if float_of_string shorter = f then shorter else Printf.sprintf "%.17g" f

let rec emit ~pretty ~indent buf v =
  let pad n = if pretty then Buffer.add_string buf (String.make n ' ') in
  let sep = if pretty then "\n" else "" in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf ("[" ^ sep);
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ("," ^ sep);
          pad (indent + 2);
          emit ~pretty ~indent:(indent + 2) buf item)
        items;
      Buffer.add_string buf sep;
      pad indent;
      Buffer.add_string buf "]"
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf ("{" ^ sep);
      List.iteri
        (fun i (k, fv) ->
          if i > 0 then Buffer.add_string buf ("," ^ sep);
          pad (indent + 2);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if pretty then ": " else ":");
          emit ~pretty ~indent:(indent + 2) buf fv)
        fields;
      Buffer.add_string buf sep;
      pad indent;
      Buffer.add_string buf "}"

let to_string ?(pretty = false) v =
  let buf = Buffer.create 4096 in
  emit ~pretty ~indent:0 buf v;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_channel ?pretty oc v = output_string oc (to_string ?pretty v)

let write_file ?pretty path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      to_channel ?pretty oc v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, found %C" c c'
    | None -> fail "expected %C, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape %S" h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             let v = parse_hex4 () in
             (* decode to UTF-8; we only emit \u for control chars, but
                accept the general form *)
             if v < 0x80 then Buffer.add_char buf (Char.chr v)
             else if v < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
             end
         | e -> fail "bad escape \\%C" e);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error m -> Error m

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let rec strip_fields ~names = function
  | Obj fields ->
      Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k names then None
             else Some (k, strip_fields ~names v))
           fields)
  | List items -> List (List.map (strip_fields ~names) items)
  | v -> v

let equal_ignoring ~ignore:names a b =
  strip_fields ~names a = strip_fields ~names b

let write_file_stable ?pretty ?(ignore = [ "generated_utc" ]) path v =
  let unchanged =
    Sys.file_exists path
    &&
    match parse_file path with
    | Ok old -> equal_ignoring ~ignore old v
    | Error _ -> false
  in
  if unchanged then false
  else begin
    write_file ?pretty path v;
    true
  end

let schema_header ~schema_version =
  [ ("schema_version", Int schema_version);
    ("host_cores", Int (Domain.recommended_domain_count ()));
    ("generated_utc", Str (Clock.wall_iso8601 ())) ]
