module J = Json_emit

(* ------------------------------------------------------------------ *)
(* Flattening: a benchmark document becomes dotted numeric metrics.
   Arrays of objects are keyed by their "name" field when they carry
   one (so a reordered workload list still lines up), by index
   otherwise.  Strings and nulls drop out — which is also what makes
   [generated_utc] invisible to the comparator.                        *)
(* ------------------------------------------------------------------ *)

let flatten doc =
  let out = ref [] in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec go prefix = function
    | J.Int i -> out := (prefix, float_of_int i) :: !out
    | J.Float f -> out := (prefix, f) :: !out
    | J.Bool b -> out := (prefix, if b then 1.0 else 0.0) :: !out
    | J.Str _ | J.Null -> ()
    | J.Obj fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | J.List items ->
        List.iteri
          (fun i item ->
            let key =
              match J.member "name" item with
              | Some (J.Str n) -> n
              | _ -> string_of_int i
            in
            go (join prefix key) item)
          items
  in
  go "" doc;
  (* first occurrence wins on (unlikely) duplicate paths *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.sort compare (List.rev !out))

(* ------------------------------------------------------------------ *)
(* History store: bench/history/<bench>.jsonl, one line per recorded
   run, schema-versioned (Schemas.perfhist)                            *)
(* ------------------------------------------------------------------ *)

type entry = { e_utc : string; e_metrics : (string * float) list }

let history_file ~dir ~bench = Filename.concat dir (bench ^ ".jsonl")

let entry_to_json ~bench metrics =
  J.Obj
    [ ("schema_version", J.Int Schemas.perfhist);
      ("bench", J.Str bench);
      ("generated_utc", J.Str (Clock.wall_iso8601 ()));
      ("metrics", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) metrics)) ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let record ~dir ~bench doc =
  mkdir_p dir;
  let line = J.to_string (entry_to_json ~bench (flatten doc)) in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (history_file ~dir ~bench)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc line;
      output_char oc '\n')

let entry_of_line line =
  match J.parse line with
  | Error _ -> None
  | Ok doc -> (
      match (J.member "schema_version" doc, J.member "metrics" doc) with
      | Some (J.Int v), Some (J.Obj fields) when v = Schemas.perfhist ->
          let metrics =
            List.filter_map
              (fun (k, v) ->
                match v with
                | J.Float f -> Some (k, f)
                | J.Int i -> Some (k, float_of_int i)
                | _ -> None)
              fields
          in
          let utc =
            match J.member "generated_utc" doc with
            | Some (J.Str s) -> s
            | _ -> ""
          in
          Some { e_utc = utc; e_metrics = metrics }
      | _ -> None)

let load ~dir ~bench =
  let path = history_file ~dir ~bench in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        (try
           while true do
             match entry_of_line (input_line ic) with
             | Some e -> entries := e :: !entries
             | None -> () (* malformed or foreign-schema line: skipped *)
           done
         with End_of_file -> ());
        List.rev !entries)
  end

(* noise-aware baseline: per-metric median over the last [window]
   recorded runs, so one outlier run cannot poison the reference *)
let baseline ~window entries =
  let recent =
    let n = List.length entries in
    List.filteri (fun i _ -> i >= n - max 1 window) entries
  in
  let tbl : (string, float list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
      List.iter
        (fun (k, v) ->
          (match Hashtbl.find_opt tbl k with
          | Some vs -> Hashtbl.replace tbl k (v :: vs)
          | None ->
              order := k :: !order;
              Hashtbl.replace tbl k [ v ]))
        e.e_metrics)
    recent;
  List.rev_map (fun k -> (k, Clock.median (Hashtbl.find tbl k))) !order
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Per-metric tolerance bands.  Wall-clock and throughput numbers are
   noisy (machine load, turbo states): 25%.  Allocation and byte
   counts wobble only with GC scheduling: 15%.  Deterministic
   fractions the smoke gates also watch get a tight 2%.  Everything
   else — counts, versions, configuration echoes — is reported as
   informational drift, never gated.                                   *)
(* ------------------------------------------------------------------ *)

type direction = Lower_better | Higher_better | Info_only

let direction_name = function
  | Lower_better -> "lower"
  | Higher_better -> "higher"
  | Info_only -> "info"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let ends_with ~suffix s =
  let ns = String.length suffix and n = String.length s in
  n >= ns && String.sub s (n - ns) ns = suffix

let classify path =
  let p = String.lowercase_ascii path in
  if
    contains p "schema_version" || contains p "host_cores"
    || contains p "domains" || ends_with ~suffix:"workloads" p
  then (Info_only, 0.0)
  else if contains p "pruned_pct" || contains p "pruned_fraction" then
    (Higher_better, 0.02)
  else if
    contains p "mev_s" || contains p "mb_s" || contains p "per_s"
    || contains p "speedup" || contains p "improvement"
  then (Higher_better, 0.25)
  else if
    contains p "seconds" || ends_with ~suffix:"_ns" p
    || ends_with ~suffix:".ns" p || contains p "latency" || contains p "wall"
  then (Lower_better, 0.25)
  else if
    contains p "minor_words" || contains p "major_words"
    || contains p "heap" || contains p "bytes"
  then (Lower_better, 0.15)
  else (Info_only, 0.0)

type verdict = Within | Regressed | Improved | New_metric | Missing | Info

let verdict_name = function
  | Within -> "ok"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | New_metric -> "new"
  | Missing -> "missing"
  | Info -> "info"

type row = {
  r_metric : string;
  r_dir : direction;
  r_tol : float;
  r_base : float option;
  r_cur : float option;
  r_delta_pct : float option;  (** (cur - base) / |base| * 100 *)
  r_verdict : verdict;
}

let diff ~baseline:base ~current =
  let base_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) base;
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace cur_tbl k v) current;
  let row_of metric =
    let dir, tol = classify metric in
    let b = Hashtbl.find_opt base_tbl metric in
    let c = Hashtbl.find_opt cur_tbl metric in
    let delta_pct =
      match (b, c) with
      | Some b, Some c when Float.abs b > 0.0 ->
          Some ((c -. b) /. Float.abs b *. 100.0)
      | _ -> None
    in
    let verdict =
      match (b, c, dir) with
      | None, Some _, _ -> New_metric
      | Some _, None, _ -> Missing
      | None, None, _ -> Info
      | Some _, Some _, Info_only -> Info
      | Some b, Some c, _ -> (
          match delta_pct with
          | None ->
              (* baseline is exactly 0: relative drift is undefined, so
                 only an exact match is quiet *)
              if Float.abs (c -. b) <= 1e-12 then Within else Info
          | Some d ->
              let tol_pct = tol *. 100.0 in
              let worse =
                match dir with
                | Lower_better -> d > tol_pct
                | Higher_better -> d < -.tol_pct
                | Info_only -> false
              in
              let better =
                match dir with
                | Lower_better -> d < -.tol_pct
                | Higher_better -> d > tol_pct
                | Info_only -> false
              in
              if worse then Regressed
              else if better then Improved
              else Within)
    in
    { r_metric = metric; r_dir = dir; r_tol = tol; r_base = b; r_cur = c;
      r_delta_pct = delta_pct; r_verdict = verdict }
  in
  let metrics =
    List.sort_uniq compare (List.map fst base @ List.map fst current)
  in
  List.map row_of metrics

let regressions rows = List.filter (fun r -> r.r_verdict = Regressed) rows

let row_json r =
  J.Obj
    ([ ("metric", J.Str r.r_metric);
       ("direction", J.Str (direction_name r.r_dir));
       ("tolerance_pct", J.Float (r.r_tol *. 100.0));
       ("verdict", J.Str (verdict_name r.r_verdict)) ]
    @ (match r.r_base with Some b -> [ ("baseline", J.Float b) ] | None -> [])
    @ (match r.r_cur with Some c -> [ ("current", J.Float c) ] | None -> [])
    @
    match r.r_delta_pct with
    | Some d -> [ ("delta_pct", J.Float d) ]
    | None -> [])
