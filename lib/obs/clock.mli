(** Monotonic time for self-profiling.

    [Unix.gettimeofday] follows the system wall clock, which NTP can
    step backwards or forwards mid-run; phase timings taken from it can
    come out negative or wildly inflated.  This module reads
    [clock_gettime(CLOCK_MONOTONIC)] through a tiny C stub and is the
    one time source every span, benchmark and exporter in the tree
    uses.  Where the POSIX clock is unavailable the stub reports it and
    the implementation falls back to a never-decreasing (clamped)
    [gettimeofday]. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary (per-boot) epoch; never decreases. *)

val monotonic : unit -> float
(** Seconds since an arbitrary epoch — the drop-in replacement for the
    [Unix.gettimeofday] delta idiom: [let t0 = monotonic () in ...;
    monotonic () -. t0] is immune to wall-clock steps. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and returns its result with the elapsed
    monotonic seconds. *)

val median : float list -> float
(** Median of a sample (mean of the middle pair when even; [0.] when
    empty) — the robust aggregate every repeated timing in the tree
    reports. *)

val wall_iso8601 : unit -> string
(** The current wall-clock time as ["YYYY-MM-DDThh:mm:ssZ"] (UTC) — for
    report metadata only, never for durations. *)
