let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    ("polyprof_" ^ name)

let exposition (snap : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ((d : Metrics.desc), v) ->
      let name = sanitize d.Metrics.d_name in
      if d.Metrics.d_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name d.Metrics.d_help);
      let ty =
        match d.Metrics.d_kind with
        | Metrics.Counter -> "counter"
        | Metrics.Gauge -> "gauge"
        | Metrics.Histogram -> "histogram"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name ty);
      match v with
      | Metrics.Vint n -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name n)
      | Metrics.Vhist h ->
          let cum = ref 0 in
          Array.iteri
            (fun k c ->
              if c > 0 || k = 0 then begin
                cum := !cum + c;
                let le = Metrics.bucket_le k in
                let le_s =
                  if le = max_int then "+Inf" else string_of_int le
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name le_s !cum)
              end
              else cum := !cum + c)
            h.Metrics.h_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.h_count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %d\n%s_count %d\n" name h.Metrics.h_sum name
               h.Metrics.h_count);
          (* summary-style quantile estimates next to the buckets, so a
             scrape answers "what is p99?" without client-side
             histogram_quantile math *)
          if h.Metrics.h_count > 0 then
            List.iter
              (fun (q, v) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s{quantile=\"%g\"} %.0f\n" name q v))
              (Metrics.quantiles h))
    snap;
  Buffer.contents buf

let write_file ~path snap =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (exposition snap))
