(** Prometheus text exposition (version 0.0.4) of a metric snapshot.

    Metric names are prefixed with [polyprof_] and dots become
    underscores; histograms expose the cumulative power-of-two buckets
    with [le] labels plus [_sum]/[_count], exactly as a scrape endpoint
    would serve them, followed by summary-style
    [name{quantile="0.5|0.9|0.99"}] lines estimated with
    {!Metrics.quantile}. *)

val exposition : Metrics.snapshot -> string

val write_file : path:string -> Metrics.snapshot -> unit
