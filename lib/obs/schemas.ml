type t = { s_name : string; s_file : string; s_version : int }

let stream = 1
let staticdep = 1
let obs = 1
let autotune = 1
let overhead = 1
let parcheck = 1
let serve = 1
let perfhist = 1
let log = 1

let all =
  [ { s_name = "autotune"; s_file = "BENCH_autotune.json"; s_version = autotune };
    { s_name = "log"; s_file = "(jsonl: Obs.Log sinks, serve --log-json)";
      s_version = log };
    { s_name = "obs"; s_file = "BENCH_obs.json"; s_version = obs };
    { s_name = "overhead"; s_file = "(stdout: polyprof overhead --json)";
      s_version = overhead };
    { s_name = "parcheck"; s_file = "BENCH_parcheck.json";
      s_version = parcheck };
    { s_name = "perfhist"; s_file = "bench/history/*.jsonl";
      s_version = perfhist };
    { s_name = "serve"; s_file = "BENCH_serve.json"; s_version = serve };
    { s_name = "staticdep"; s_file = "BENCH_staticdep.json";
      s_version = staticdep };
    { s_name = "stream"; s_file = "BENCH_stream.json"; s_version = stream } ]
