module P = Minisl.Polyhedron
module A = Minisl.Affine
module Cstr = Minisl.Constr
module Rat = Pp_util.Rat
module Matrix = Pp_util.Matrix

type piece = {
  dom : P.t;
  labels : A.t option array;
  exact : bool;
  points : int;
  under : P.t option;
      (* for over-approximated domains: a certified exact inner region
         (the paper's §10 future work, "under-approximation schemes in
         the DDG"); [None] when [exact] (the domain is its own under-
         approximation) or when no inner region was recovered *)
}

let piece_label_fn p =
  if Array.for_all Option.is_some p.labels then
    Some (Array.map Option.get p.labels)
  else None

let pp_piece ?names ?label_names fmt p =
  Format.fprintf fmt "%a (%d pts%s%s)" (P.pp ?names) p.dom p.points
    (if p.exact then "" else ", approx")
    (match p.under with None -> "" | Some _ -> ", has under-approx");
  if Array.length p.labels = 0 then ()
  else begin
    Format.fprintf fmt " -> [";
    Array.iteri
      (fun i f ->
        if i > 0 then Format.fprintf fmt ", ";
        (match label_names with
        | Some ns when i < Array.length ns -> Format.fprintf fmt "%s = " ns.(i)
        | _ -> ());
        match f with
        | Some f -> A.pp ?names fmt f
        | None -> Format.fprintf fmt "T")
      p.labels;
    Format.fprintf fmt "]"
  end

(* ------------------------------------------------------------------ *)
(* Affine fitting with sampling + verification                         *)
(* ------------------------------------------------------------------ *)

(* Fit an affine function of [sub_dim] leading coordinates through all
   (point, value) samples, by fitting a small sample then verifying the
   rest; points failing verification are added to the sample and the fit
   is retried a bounded number of times. *)
let fit_affine ~sub_dim (points : int array array) (values : Rat.t array) :
    A.t option =
  let n = Array.length points in
  if n = 0 then None
  else begin
    let take = min n (sub_dim + 2) in
    let sample = ref (List.init take Fun.id) in
    let rec attempt round =
      if round > sub_dim + 4 then None
      else begin
        let idxs = !sample in
        let pts = Array.of_list (List.map (fun i -> Array.sub points.(i) 0 sub_dim) idxs) in
        let vals = Array.of_list (List.map (fun i -> values.(i)) idxs) in
        match Matrix.affine_fit pts vals with
        | None -> None
        | Some (coeffs, const) ->
            let f = A.make coeffs const in
            (* verify on the full set *)
            let bad = ref (-1) in
            (try
               for i = 0 to n - 1 do
                 let v = A.eval f (Array.sub points.(i) 0 sub_dim) in
                 if not (Rat.equal v values.(i)) then begin
                   bad := i;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !bad < 0 then Some (A.extend f (Array.length points.(0)))
            else begin
              sample := !bad :: idxs;
              attempt (round + 1)
            end
      end
    in
    attempt 0
  end

(* ------------------------------------------------------------------ *)
(* Nest fitting: lo_d(outer) <= c_d <= hi_d(outer) with affine bounds   *)
(* ------------------------------------------------------------------ *)

type nest = { bnds : (A.t * A.t) array (* per dim, over the full space *) }

let fit_domain ~dim (points : int array array) : nest option =
  let n = Array.length points in
  if n = 0 then None
  else begin
    let bnds = Array.make dim (A.const ~dim Rat.zero, A.const ~dim Rat.zero) in
    let ok = ref true in
    for d = 0 to dim - 1 do
      if !ok then begin
        (* group by prefix c_0..c_{d-1} *)
        let tbl : (int list, int * int) Hashtbl.t = Hashtbl.create 64 in
        let order = ref [] in
        Array.iter
          (fun p ->
            let key = Array.to_list (Array.sub p 0 d) in
            match Hashtbl.find_opt tbl key with
            | None ->
                Hashtbl.add tbl key (p.(d), p.(d));
                order := key :: !order
            | Some (lo, hi) ->
                Hashtbl.replace tbl key (min lo p.(d), max hi p.(d)))
          points;
        let prefixes = Array.of_list (List.rev_map Array.of_list !order) in
        let los =
          Array.map (fun pre -> Rat.of_int (fst (Hashtbl.find tbl (Array.to_list pre)))) prefixes
        in
        let his =
          Array.map (fun pre -> Rat.of_int (snd (Hashtbl.find tbl (Array.to_list pre)))) prefixes
        in
        (* prefixes have length d; pad to at least length d for sub *)
        let padded = Array.map (fun pre -> Array.append pre (Array.make (dim - d) 0)) prefixes in
        match
          (fit_affine ~sub_dim:d padded los, fit_affine ~sub_dim:d padded his)
        with
        | Some lo_f, Some hi_f -> bnds.(d) <- (lo_f, hi_f)
        | _ -> ok := false
      end
    done;
    if !ok then Some { bnds } else None
  end

(* Count the integer points implied by the nest, aborting early past
   [limit]. *)
let implied_count ~dim nest ~limit =
  let exception Too_many in
  let prefix = Array.make dim 0 in
  let work = ref 0 in
  let rec go d =
    if d = dim then 1
    else begin
      let lo_f, hi_f = nest.bnds.(d) in
      let lo = Rat.ceil (A.eval lo_f prefix) in
      let hi = Rat.floor (A.eval hi_f prefix) in
      (* bound the sheer iteration count too: extrapolated bounds on
         prefixes absent from the data can span huge empty ranges *)
      if hi - lo > limit then raise Too_many;
      let total = ref 0 in
      for v = lo to hi do
        incr work;
        if !work > 4 * (limit + dim + 1) then raise Too_many;
        prefix.(d) <- v;
        total := !total + go (d + 1);
        if !total > limit then raise Too_many
      done;
      prefix.(d) <- 0;
      !total
    end
  in
  try Some (go 0) with Too_many -> None

let point_in_nest ~dim nest p =
  let ok = ref true in
  for d = 0 to dim - 1 do
    let lo_f, hi_f = nest.bnds.(d) in
    let c = Rat.of_int p.(d) in
    if Rat.compare c (A.eval lo_f p) < 0 || Rat.compare c (A.eval hi_f p) > 0
    then ok := false
  done;
  !ok

let nest_to_polyhedron ~dim nest =
  let cons = ref [] in
  for d = 0 to dim - 1 do
    let lo_f, hi_f = nest.bnds.(d) in
    let v = A.var ~dim d in
    cons := Cstr.of_affine Ge (A.sub v lo_f) :: Cstr.of_affine Ge (A.sub hi_f v) :: !cons
  done;
  P.make dim !cons

(* Exact fit of a segment: affine-bounded nest + affine labels.  With
   [strict:false] individual label components may come out as top. *)
let fit_segment ?(strict = true) ~dim ~label_dim (points : int array array)
    (labels : int array array) lo len : piece option =
  let pts = Array.sub points lo len in
  let lbs = Array.sub labels lo len in
  if dim = 0 then begin
    (* scalar context: a single execution; several executions of a
       0-dimensional statement cannot be folded exactly *)
    if len <> 1 then None
    else
      Some
        { dom = P.universe 0;
          labels =
            Array.map (fun v -> Some (A.const ~dim:0 (Rat.of_int v))) lbs.(0);
          exact = true;
          points = 1;
          under = None }
  end
  else
    match fit_domain ~dim pts with
    | None -> None
    | Some nest ->
        if not (Array.for_all (point_in_nest ~dim nest) pts) then None
        else if implied_count ~dim nest ~limit:len <> Some len then None
        else begin
          let fit_label k =
            fit_affine ~sub_dim:dim pts
              (Array.map (fun l -> Rat.of_int l.(k)) lbs)
          in
          let lfs = Array.init label_dim fit_label in
          if Array.for_all Option.is_some lfs then
            Some
              { dom = nest_to_polyhedron ~dim nest;
                labels = lfs;
                exact = true;
                points = len;
                under = None }
          else if strict then None
          else
            Some
              { dom = nest_to_polyhedron ~dim nest;
                labels = lfs;
                exact = true;
                points = len;
                under = None }
        end

let box_piece ~dim ~label_dim (points : int array array)
    (labels : int array array) =
  let dom =
    if Array.length points = 0 then P.empty dim
    else Minisl.Hull.box_of_points (Array.to_list points)
  in
  let lfs =
    Array.init label_dim (fun k ->
        fit_affine ~sub_dim:dim points
          (Array.map (fun l -> Rat.of_int l.(k)) labels))
  in
  (* under-approximation: the longest exactly-foldable prefix of the
     stream certifies an inner region that is definitely iterated *)
  let under =
    if dim = 0 || Array.length points < 2 then None
    else begin
      let n = Array.length points in
      let fits len =
        fit_segment ~strict:false ~dim ~label_dim points labels 0 len
      in
      let len = ref 1 in
      while (2 * !len <= n) && fits (2 * !len) <> None do
        len := 2 * !len
      done;
      match fits !len with
      | Some p when !len > 1 -> Some p.dom
      | _ -> None
    end
  in
  { dom; labels = lfs; exact = false; points = Array.length points; under }

(* Split the stream by a per-dimension boundary predicate: points at the
   first iteration of dim [d] (within their prefix) versus the rest.
   This captures the classic boundary pieces of dependence relations —
   e.g. a reduction whose first inner iteration reads the previous outer
   iteration's result (paper Table 2: the I4->I4 dependence holds on
   ck >= 1 only). *)
let split_boundary_iteration ~last part d =
  let extremes : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let better a b = if last then a > b else a < b in
  List.iter
    (fun ((p : int array), _) ->
      let key = Array.to_list (Array.sub p 0 d) in
      match Hashtbl.find_opt extremes key with
      | None -> Hashtbl.add extremes key p.(d)
      | Some m -> if better p.(d) m then Hashtbl.replace extremes key p.(d))
    part;
  let boundary = ref [] and rest = ref [] in
  List.iter
    (fun ((p : int array), l) ->
      let m = Hashtbl.find extremes (Array.to_list (Array.sub p 0 d)) in
      if p.(d) = m then boundary := (p, l) :: !boundary
      else rest := (p, l) :: !rest)
    part;
  (List.rev !boundary, List.rev !rest)

let fold_exact ?(boundary_splits = true) ~dim ~label_dim ~max_pieces points
    labels =
  let n = Array.length points in
  if n = 0 then []
  else
    let fit_list part =
      let pts = Array.of_list (List.map fst part) in
      let lbs = Array.of_list (List.map snd part) in
      fit_segment ~dim ~label_dim pts lbs 0 (Array.length pts)
    in
    (* recursive boundary splitting, innermost dimension first, with a
       small budget (up to 4 pieces) *)
    let rec fit_with_splits part budget =
      match fit_list part with
      | Some p -> Some [ p ]
      | None when budget > 0 ->
          let rec go d last =
            if d < 0 then if last then None else go (dim - 1) true
            else begin
              let first, rest = split_boundary_iteration ~last part d in
              if first = [] || rest = [] then go (d - 1) last
              else
                match
                  ( fit_with_splits first (budget - 1),
                    fit_with_splits rest (budget - 1) )
                with
                | Some a, Some b -> Some (a @ b)
                | _ -> go (d - 1) last
            end
          in
          go (dim - 1) false
      | None -> None
    in
    let all = Array.to_list (Array.mapi (fun k p -> (p, labels.(k))) points) in
    match fit_segment ~dim ~label_dim points labels 0 n with
    | Some p -> [ p ]
    | None ->
    match
      if dim > 0 && boundary_splits then fit_with_splits all 2 else None
    with
    | Some ps -> ps
    | None ->
        (* greedy segmentation with doubling + binary search *)
        let pieces = ref [] in
        let i = ref 0 in
        let too_many = ref false in
        while !i < n && not !too_many do
          let fits len = Option.is_some (fit_segment ~dim ~label_dim points labels !i len) in
          (* grow the segment by doubling + binary search; fits() is not
             monotone (a partial inner row can fail where the next full
             row succeeds), so retry the expansion from each new best
             until it stops improving *)
          let best = ref 1 in
          let improved = ref true in
          while !improved do
            improved := false;
            let len = ref !best in
            while !i + (2 * !len) <= n && fits (2 * !len) do
              len := 2 * !len
            done;
            let lo = ref !len and hi = ref (min (2 * !len) (n - !i)) in
            while !lo < !hi do
              let mid = (!lo + !hi + 1) / 2 in
              if fits mid then lo := mid else hi := mid - 1
            done;
            if !lo > !best then begin
              best := !lo;
              improved := true
            end
          done;
          let best = !best in
          (match fit_segment ~dim ~label_dim points labels !i best with
          | Some p -> pieces := p :: !pieces
          | None -> assert false);
          i := !i + best;
          if List.length !pieces > max_pieces then too_many := true
        done;
        if !too_many then
          (* before giving up the domain, try the whole stream with
             per-component label over-approximation: an exact domain
             whose irregular label components are top *)
          match fit_segment ~strict:false ~dim ~label_dim points labels 0 n with
          | Some p -> [ p ]
          | None -> [ box_piece ~dim ~label_dim points labels ]
        else List.rev !pieces

(* ------------------------------------------------------------------ *)
(* Streaming collector                                                  *)
(* ------------------------------------------------------------------ *)

module Collector = struct
  let obs_points = Obs.Metrics.counter ~help:"dependence points folded into polyhedral pieces" "fold.points"
  let obs_pieces = Obs.Metrics.counter ~help:"polyhedral pieces produced by folding" "fold.pieces"
  let obs_approx = Obs.Metrics.counter ~help:"collectors that overflowed their cap into approx mode" "fold.approx_spills"

  type approx_state = {
    mutable lo : int array;
    mutable hi : int array;
    mutable labels : A.t option array;  (* still-valid incremental fits *)
  }

  type mode =
    | Buffering of (int array * int array) list ref
    | Approx of approx_state

  type t = {
    dim : int;
    label_dim : int;
    cap : int;
    max_pieces : int;
    boundary_splits : bool;
    per_component : bool;
    mutable n : int;
    mutable mode : mode;
    mutable finalized : piece list option;
  }

  let create ?(cap = 100_000) ?(max_pieces = 16) ?(boundary_splits = true)
      ?(per_component = true) ~dim ~label_dim () =
    { dim;
      label_dim;
      cap;
      max_pieces;
      boundary_splits;
      per_component;
      n = 0;
      mode = Buffering (ref []);
      finalized = None }

  let npoints t = t.n
  let dim t = t.dim

  let to_arrays buf =
    let items = Array.of_list (List.rev !buf) in
    (Array.map fst items, Array.map snd items)

  let switch_to_approx t buf =
    let points, labels = to_arrays buf in
    let n = Array.length points in
    let lo = Array.copy points.(0) and hi = Array.copy points.(0) in
    Array.iter
      (fun p ->
        Array.iteri
          (fun k v ->
            if v < lo.(k) then lo.(k) <- v;
            if v > hi.(k) then hi.(k) <- v)
          p)
      points;
    ignore n;
    let lfs =
      Array.init t.label_dim (fun k ->
          fit_affine ~sub_dim:t.dim points
            (Array.map (fun l -> Rat.of_int l.(k)) labels))
    in
    let st = { lo; hi; labels = lfs } in
    t.mode <- Approx st;
    st

  let add t coords label =
    assert (Array.length coords = t.dim && Array.length label = t.label_dim);
    assert (t.finalized = None);
    t.n <- t.n + 1;
    match t.mode with
    | Buffering buf ->
        buf := (coords, label) :: !buf;
        if t.n >= t.cap then ignore (switch_to_approx t buf)
    | Approx st ->
        Array.iteri
          (fun k v ->
            if v < st.lo.(k) then st.lo.(k) <- v;
            if v > st.hi.(k) then st.hi.(k) <- v)
          coords;
        Array.iteri
          (fun k f ->
            match f with
            | Some f ->
                if not (Rat.equal (A.eval f coords) (Rat.of_int label.(k)))
                then st.labels.(k) <- None
            | None -> ())
          st.labels

  let box_of_bounds dim lo hi =
    let cons = ref [] in
    for k = 0 to dim - 1 do
      let up = Array.make dim 0 and dn = Array.make dim 0 in
      up.(k) <- 1;
      dn.(k) <- -1;
      cons := Cstr.make Ge up (-lo.(k)) :: Cstr.make Ge dn hi.(k) :: !cons
    done;
    P.make dim !cons

  let result t =
    match t.finalized with
    | Some ps -> ps
    | None ->
        let ps =
          match t.mode with
          | Buffering buf ->
              let points, labels = to_arrays buf in
              fold_exact ~boundary_splits:t.boundary_splits ~dim:t.dim
                ~label_dim:t.label_dim ~max_pieces:t.max_pieces points labels
          | Approx st ->
              [ { dom = box_of_bounds t.dim st.lo st.hi;
                  labels = st.labels;
                  exact = false;
                  points = t.n;
                  under = None } ]
        in
        let ps =
          if t.per_component then ps
          else
            (* ablation: the paper-style all-or-nothing label
               over-approximation — one irregular component tops them all *)
            List.map
              (fun (p : piece) ->
                if Array.exists Option.is_none p.labels then
                  { p with labels = Array.map (fun _ -> None) p.labels }
                else p)
              ps
        in
        t.finalized <- Some ps;
        if Obs.Registry.enabled () then begin
          Obs.Metrics.add obs_points t.n;
          Obs.Metrics.add obs_pieces (List.length ps);
          match t.mode with
          | Approx _ -> Obs.Metrics.add obs_approx 1
          | Buffering _ -> ()
        end;
        ps

  let is_affine t =
    List.for_all
      (fun p -> p.exact && Array.for_all Option.is_some p.labels)
      (result t)
end

let fold_points ~dim ~label_dim pts =
  let c = Collector.create ~dim ~label_dim () in
  List.iter (fun (p, l) -> Collector.add c p l) pts;
  Collector.result c
