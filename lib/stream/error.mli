exception Error of string
(** Typed error for every failure of the trace codec: bad magic,
    unsupported version, truncated file, CRC mismatch, malformed
    varint/event payload.  Re-exported as [Stream.Error]. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Error} with a formatted diagnostic. *)
