(* Binary trace wire format (version 1).

   File layout:

     +---------------------------+
     | magic   "PLYPROF1"  8 B   |
     | version u8          1 B   |
     +---------------------------+
     | chunk*                    |
     +---------------------------+

   Chunk layout:

     kind     u8       'E' = events, 'S' = stats trailer
     length   varint   payload byte count
     crc32    u32 LE   CRC-32 of the payload bytes
     payload  length bytes

   An events payload is [varint n] followed by [n] encoded events.  All
   per-chunk coding state — delta predictors and the two dictionaries —
   resets at each chunk boundary, so a chunk decodes without looking at
   any other chunk's payload; a truncated or corrupted file is detected
   by the framing (missing bytes or CRC mismatch) and rejected with a
   diagnostic instead of Marshal undefined behaviour.  The one piece of
   cross-chunk state is the call depth, which is not stored at all: it
   is re-derived by counting call/return events, exactly how the
   interpreter produced it.

   Event encoding: one tag byte (0 jump / 1 call / 2 return / 3 exec).
   Control fields are small varints, with the jump/call function id
   delta-coded against the previous function id.  Exec events carry a
   flags byte (value/addr presence, value kind, operand-dictionary miss,
   op class) and then:

   - the sid, delta-coded with a zigzag varint (small strides in loops);
   - the produced value: ints as zigzag varints; floats through a
     per-chunk dictionary — a varint index (0 = literal follows, 8 B
     little-endian IEEE bits, which also defines the next index) since
     traced programs churn through few distinct float values compared
     to the number of FP events;
   - read/written addresses, delta-coded (array walks are strided);
   - the register operand lists only on the first occurrence of the sid
     in the chunk (flag bit 4): operands of a static instruction never
     change, so later events reuse the dictionary entry. *)

let magic = "PLYPROF1"
let version = 1

let kind_events = 'E'
let kind_stats = 'S'

let max_chunk_payload = 1 lsl 30
(* sanity bound when decoding: a corrupt length field must not trigger a
   gigantic allocation *)

let max_float_dict = 1 lsl 20
(* bound on dictionary entries per chunk, so decoder memory stays small
   even for an adversarial maximum-size chunk *)

(* ------------------------------------------------------------------ *)
(* Coding state                                                        *)
(* ------------------------------------------------------------------ *)

type operands = { o_reads : Vm.Isa.reg list; o_writes : Vm.Isa.reg option }

type delta = {
  mutable prev_fid : int;
  mutable prev_sid : int;
  mutable prev_addr_r : int;
  mutable prev_addr_w : int;
  mutable depth : int;  (* derived call depth: persists across chunks *)
  sid_ops : (int, operands) Hashtbl.t;  (* per-chunk operand dictionary *)
  f_enc : (int64, int) Hashtbl.t;  (* encoder: float bits -> dict index *)
  mutable f_dec : float array;  (* decoder: dict index -> float *)
  mutable n_floats : int;
  (* cumulative encoder dictionary telemetry: survives [reset_delta] so
     a sink can report whole-stream hit rates *)
  mutable op_hits : int;
  mutable op_misses : int;
  mutable f_hits : int;
  mutable f_misses : int;
}

let delta () =
  { prev_fid = 0;
    prev_sid = 0;
    prev_addr_r = 0;
    prev_addr_w = 0;
    depth = 0;
    sid_ops = Hashtbl.create 256;
    f_enc = Hashtbl.create 256;
    f_dec = Array.make 256 0.0;
    n_floats = 0;
    op_hits = 0;
    op_misses = 0;
    f_hits = 0;
    f_misses = 0 }

let dict_stats d = (d.op_hits, d.op_misses, d.f_hits, d.f_misses)

let reset_delta d =
  d.prev_fid <- 0;
  d.prev_sid <- 0;
  d.prev_addr_r <- 0;
  d.prev_addr_w <- 0;
  Hashtbl.reset d.sid_ops;
  Hashtbl.reset d.f_enc;
  d.n_floats <- 0
(* [depth] deliberately survives: the call stack spans chunks *)

(* ------------------------------------------------------------------ *)
(* Op class <-> 3 bits                                                 *)
(* ------------------------------------------------------------------ *)

let cls_to_int = function
  | Vm.Isa.Int_alu -> 0
  | Vm.Isa.Fp_alu -> 1
  | Vm.Isa.Mem_load -> 2
  | Vm.Isa.Mem_store -> 3
  | Vm.Isa.Other_op -> 4

let cls_of_int = function
  | 0 -> Vm.Isa.Int_alu
  | 1 -> Vm.Isa.Fp_alu
  | 2 -> Vm.Isa.Mem_load
  | 3 -> Vm.Isa.Mem_store
  | 4 -> Vm.Isa.Other_op
  | n -> Error.fail "codec: invalid op class %d" n

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let tag_jump = 0
let tag_call = 1
let tag_return = 2
let tag_exec = 3

let encode_control d b (c : Vm.Event.control) =
  match c with
  | Vm.Event.Jump { fid; src; dst } ->
      Buffer.add_char b (Char.chr tag_jump);
      Varint.put_s b (fid - d.prev_fid);
      d.prev_fid <- fid;
      Varint.put_u b src;
      Varint.put_u b dst
  | Vm.Event.Call { caller; site; callee; dst } ->
      Buffer.add_char b (Char.chr tag_call);
      Varint.put_s b (caller - d.prev_fid);
      Varint.put_u b site;
      Varint.put_u b callee;
      Varint.put_u b dst;
      d.prev_fid <- callee;
      d.depth <- d.depth + 1
  | Vm.Event.Return { callee; caller; dst } ->
      Buffer.add_char b (Char.chr tag_return);
      Varint.put_u b callee;
      Varint.put_u b caller;
      Varint.put_u b dst;
      d.prev_fid <- caller;
      d.depth <- d.depth - 1

let encode_float d b f =
  let bits = Int64.bits_of_float f in
  match Hashtbl.find_opt d.f_enc bits with
  | Some i ->
      d.f_hits <- d.f_hits + 1;
      Varint.put_u b (i + 1)
  | None ->
      d.f_misses <- d.f_misses + 1;
      Varint.put_u b 0;
      Varint.put_f64 b f;
      if d.n_floats < max_float_dict then begin
        Hashtbl.add d.f_enc bits d.n_floats;
        d.n_floats <- d.n_floats + 1
      end

let encode_exec d b (e : Vm.Event.exec) =
  Buffer.add_char b (Char.chr tag_exec);
  let ops_known =
    match Hashtbl.find_opt d.sid_ops e.sid with
    | Some o -> o.o_reads = e.reads && o.o_writes = e.writes
    | None -> false
  in
  if ops_known then d.op_hits <- d.op_hits + 1
  else d.op_misses <- d.op_misses + 1;
  let flags = ref (cls_to_int e.cls lsl 5) in
  (match e.value with
  | Some (Vm.Event.I _) -> flags := !flags lor 0x01
  | Some (Vm.Event.F _) -> flags := !flags lor 0x03
  | None -> ());
  if e.addr_read <> None then flags := !flags lor 0x04;
  if e.addr_written <> None then flags := !flags lor 0x08;
  if not ops_known then flags := !flags lor 0x10;
  Buffer.add_char b (Char.chr !flags);
  Varint.put_s b (e.sid - d.prev_sid);
  d.prev_sid <- e.sid;
  (match e.value with
  | Some (Vm.Event.I v) -> Varint.put_s b v
  | Some (Vm.Event.F f) -> encode_float d b f
  | None -> ());
  (match e.addr_read with
  | Some a ->
      Varint.put_s b (a - d.prev_addr_r);
      d.prev_addr_r <- a
  | None -> ());
  (match e.addr_written with
  | Some a ->
      Varint.put_s b (a - d.prev_addr_w);
      d.prev_addr_w <- a
  | None -> ());
  if not ops_known then begin
    Varint.put_u b (List.length e.reads);
    List.iter (fun r -> Varint.put_u b r) e.reads;
    (match e.writes with
    | Some r -> Varint.put_u b (r + 1)
    | None -> Varint.put_u b 0);
    Hashtbl.replace d.sid_ops e.sid { o_reads = e.reads; o_writes = e.writes }
  end

let encode d b = function
  | Vm.Event.Control c -> encode_control d b c
  | Vm.Event.Exec e -> encode_exec d b e

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let decode_float d (r : Varint.reader) =
  match Varint.get_u r with
  | 0 ->
      let f = Varint.get_f64 r in
      if d.n_floats < max_float_dict then begin
        if d.n_floats = Array.length d.f_dec then begin
          let bigger = Array.make (2 * Array.length d.f_dec) 0.0 in
          Array.blit d.f_dec 0 bigger 0 d.n_floats;
          d.f_dec <- bigger
        end;
        d.f_dec.(d.n_floats) <- f;
        d.n_floats <- d.n_floats + 1
      end;
      f
  | k ->
      if k > d.n_floats then
        Error.fail "codec: float dictionary index %d out of range (%d entries)"
          k d.n_floats;
      d.f_dec.(k - 1)

let decode_one d (r : Varint.reader) : Vm.Event.t =
  if Varint.eof r then Error.fail "codec: truncated event payload";
  let tag = Char.code (Bytes.get r.Varint.buf r.Varint.pos) in
  r.Varint.pos <- r.Varint.pos + 1;
  if tag = tag_jump then begin
    let fid = d.prev_fid + Varint.get_s r in
    d.prev_fid <- fid;
    let src = Varint.get_u r in
    let dst = Varint.get_u r in
    Vm.Event.Control (Vm.Event.Jump { fid; src; dst })
  end
  else if tag = tag_call then begin
    let caller = d.prev_fid + Varint.get_s r in
    let site = Varint.get_u r in
    let callee = Varint.get_u r in
    let dst = Varint.get_u r in
    d.prev_fid <- callee;
    d.depth <- d.depth + 1;
    Vm.Event.Control (Vm.Event.Call { caller; site; callee; dst })
  end
  else if tag = tag_return then begin
    let callee = Varint.get_u r in
    let caller = Varint.get_u r in
    let dst = Varint.get_u r in
    d.prev_fid <- caller;
    d.depth <- d.depth - 1;
    Vm.Event.Control (Vm.Event.Return { callee; caller; dst })
  end
  else if tag = tag_exec then begin
    if Varint.eof r then Error.fail "codec: truncated exec flags";
    let flags = Char.code (Bytes.get r.Varint.buf r.Varint.pos) in
    r.Varint.pos <- r.Varint.pos + 1;
    let cls = cls_of_int (flags lsr 5) in
    let sid = d.prev_sid + Varint.get_s r in
    d.prev_sid <- sid;
    let value =
      if flags land 0x01 = 0 then None
      else if flags land 0x02 <> 0 then Some (Vm.Event.F (decode_float d r))
      else Some (Vm.Event.I (Varint.get_s r))
    in
    let addr_read =
      if flags land 0x04 = 0 then None
      else begin
        let a = d.prev_addr_r + Varint.get_s r in
        d.prev_addr_r <- a;
        Some a
      end
    in
    let addr_written =
      if flags land 0x08 = 0 then None
      else begin
        let a = d.prev_addr_w + Varint.get_s r in
        d.prev_addr_w <- a;
        Some a
      end
    in
    let { o_reads = reads; o_writes = writes } =
      if flags land 0x10 <> 0 then begin
        let nreads = Varint.get_u r in
        if nreads > r.Varint.limit - r.Varint.pos then
          Error.fail "codec: corrupt read-list length %d" nreads;
        let reads = List.init nreads (fun _ -> Varint.get_u r) in
        let writes =
          match Varint.get_u r with 0 -> None | w -> Some (w - 1)
        in
        let o = { o_reads = reads; o_writes = writes } in
        Hashtbl.replace d.sid_ops sid o;
        o
      end
      else
        match Hashtbl.find_opt d.sid_ops sid with
        | Some o -> o
        | None ->
            Error.fail "codec: exec of sid %d before its operand-dictionary \
                        entry" sid
    in
    Vm.Event.Exec
      { sid; cls; value; addr_read; addr_written; reads; writes;
        depth = d.depth }
  end
  else Error.fail "codec: unknown event tag %d" tag

let decode_events d payload f =
  let r = Varint.reader payload in
  let n = Varint.get_u r in
  reset_delta d;
  for _ = 1 to n do
    f (decode_one d r)
  done;
  if not (Varint.eof r) then
    Error.fail "codec: %d trailing bytes after %d events"
      (r.Varint.limit - r.Varint.pos) n;
  n

(* ------------------------------------------------------------------ *)
(* Stats trailer                                                       *)
(* ------------------------------------------------------------------ *)

let encode_stats b (s : Vm.Interp.stats) =
  Varint.put_u b s.Vm.Interp.dyn_instrs;
  Varint.put_u b s.Vm.Interp.dyn_mem_ops;
  Varint.put_u b s.Vm.Interp.dyn_fp_ops;
  Varint.put_u b s.Vm.Interp.max_depth

let decode_stats payload : Vm.Interp.stats =
  let r = Varint.reader payload in
  let dyn_instrs = Varint.get_u r in
  let dyn_mem_ops = Varint.get_u r in
  let dyn_fp_ops = Varint.get_u r in
  let max_depth = Varint.get_u r in
  if not (Varint.eof r) then Error.fail "codec: trailing bytes in stats chunk";
  { Vm.Interp.dyn_instrs; dyn_mem_ops; dyn_fp_ops; max_depth }
