(** CRC-32 (IEEE, the zlib/PNG polynomial) over bytes, used to seal each
    trace chunk so truncation and corruption are detected instead of
    silently decoded. *)

val update : int32 -> Bytes.t -> pos:int -> len:int -> int32
(** [update crc b ~pos ~len] extends a running checksum. Initial value: [0l]. *)

val bytes : ?crc:int32 -> Bytes.t -> int32
val string : ?crc:int32 -> string -> int32
