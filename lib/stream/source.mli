(** Streaming trace reader: decodes a binary trace chunk-at-a-time, so
    peak memory is one chunk payload regardless of trace length.

    All failures — missing/bad magic, unsupported version, truncated
    file, CRC mismatch, malformed payload — raise [Stream.Error] with a
    diagnostic naming the file and defect. *)

type t

val open_file : string -> t
(** Validate the header.  @raise Error.Error if [path] is not a
    version-compatible polyprof binary trace. *)

val iter : t -> (Vm.Event.t -> unit) -> unit
(** Stream every remaining event, in order, through the consumer.
    Single-shot: a source can only be iterated once. *)

val replay : t -> Vm.Interp.callbacks -> unit
(** {!iter} dispatched to instrumentation callbacks. *)

val stats : t -> Vm.Interp.stats option
(** The recorded run's interpreter stats, once the trailer chunk has
    been read (i.e. after {!iter}/{!replay} completed). *)

val n_events : t -> int
(** Events decoded so far. *)

val n_chunks : t -> int
val close : t -> unit

val with_file : string -> (t -> 'a) -> 'a
(** [with_file path f] opens, applies [f], and always closes. *)
