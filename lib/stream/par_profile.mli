(** Domain-parallel dependence profiling over a recorded trace.

    [domains] workers each replay the full event stream as one shard of
    {!Ddg.Depprof.Sharded} (shadow state split by address range), then
    the buffered dependence edges are merged — folding in parallel on a
    small domain pool — into a result {e bit-identical} to the
    sequential {!Ddg.Depprof.profile} of the same execution.

    Teardown is exception-safe: if any shard worker or merge task raises
    (including on the caller's own shard), every spawned domain is still
    joined before the first failure is re-raised — no worker domain is
    ever leaked, which matters to long-running hosts of this code such
    as the [polyprof serve] daemon. *)

type stats = {
  domains : int;
  per_domain_events : int array;  (** events replayed by each worker *)
  per_domain_dep_edges : int array;  (** dynamic edges each shard owned *)
  per_domain_peak_shadow : int array;  (** peak live shadow entries *)
  replay_seconds : float;  (** parallel replay wall time *)
  merge_seconds : float;  (** deterministic merge + fold wall time *)
}

type outcome = { result : Ddg.Depprof.result; par_stats : stats }

val default_domains : unit -> int
(** [min 4 (Domain.recommended_domain_count ())], at least 1. *)

val profile_file :
  ?config:Ddg.Depprof.config ->
  ?domains:int ->
  string ->
  Vm.Prog.t ->
  structure:Cfg.Cfg_builder.structure ->
  outcome
(** Profile a binary trace file out-of-core: every domain streams its
    own {!Source} on the file, so peak memory is bounded by shadow/fold
    state, not trace length.  The file must carry a stats trailer.
    @raise Error.Error on a corrupt trace or missing trailer. *)

val profile_trace :
  ?config:Ddg.Depprof.config ->
  ?domains:int ->
  Vm.Trace.t ->
  run_stats:Vm.Interp.stats ->
  Vm.Prog.t ->
  structure:Cfg.Cfg_builder.structure ->
  outcome
(** Same over an in-memory trace (shared read-only across domains). *)
