(* Domain-parallel sharded dependence profiling.

   Each of [domains] workers replays the complete event stream (its own
   [Source] on the trace file, or a shared in-memory trace) as one
   address shard of [Ddg.Depprof.Sharded]; the partials are then merged
   — with the per-dependence folds themselves spread over a small domain
   pool — into a result bit-identical to the sequential profiler. *)

type stats = {
  domains : int;
  per_domain_events : int array;
  per_domain_dep_edges : int array;
  per_domain_peak_shadow : int array;
  replay_seconds : float;
  merge_seconds : float;
}

type outcome = { result : Ddg.Depprof.result; par_stats : stats }

let default_domains () =
  let n = Domain.recommended_domain_count () in
  max 1 (min 4 n)

let obs_steals = Obs.Metrics.counter ~help:"merge tasks drained from the work-stealing pool" "stream.par.steal_tasks"
let obs_workers = Obs.Metrics.counter ~help:"shard replay workers spawned" "stream.par.workers"
let obs_shard_events = Obs.Metrics.histogram ~help:"events replayed per shard worker" "stream.par.shard_events"
let obs_shard_edges = Obs.Metrics.histogram ~help:"dependence edges found per shard worker" "stream.par.shard_dep_edges"
let obs_peak_shadow = Obs.Metrics.gauge ~help:"peak shadow-table entries over all shard workers" "stream.par.peak_shadow"

(* Exception-safe fan-in: run [main] on the caller, then join EVERY
   spawned domain before letting any exception escape — a failure on the
   lead path must not leak running domains, and a failing worker must
   not stop the remaining joins.  The first failure (lead first, then
   spawn order) is re-raised with its backtrace once all domains are
   joined. *)
let join_all ~main spawned =
  let wrap f =
    try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  let lead = wrap main in
  let joined = List.map (fun d -> wrap (fun () -> Domain.join d)) spawned in
  List.map
    (function
      | Ok r -> r
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    (lead :: joined)

(* Work-stealing map over independent pure thunks: an atomic cursor
   hands out indices, [domains - 1] helper domains plus the caller drain
   it.  Results land in distinct array slots; Domain.join publishes
   them. *)
let pool_map ~domains thunks =
  let arr = Array.of_list thunks in
  let n = Array.length arr in
  if domains <= 1 || n <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        Obs.Metrics.add obs_steals 1;
        results.(i) <- Some (arr.(i) ());
        drain ()
      end
    in
    let helpers =
      List.init (min domains n - 1) (fun _ ->
          Domain.spawn (fun () ->
              drain ();
              Obs.Metrics.flush_domain ()))
    in
    ignore (join_all ~main:drain helpers : unit list);
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  end

let finish ?config ~t0 ~t1 ~partials ~run_stats ~structure ~domains () =
  let pmap = pool_map ~domains in
  let result =
    Obs.Span.with_ ~cat:"stream" "par.merge" @@ fun () ->
    Ddg.Depprof.Sharded.merge ?config ~pmap ~partials ~run_stats ~structure ()
  in
  let t2 = Obs.Clock.monotonic () in
  if Obs.Registry.enabled () then
    List.iter
      (fun p ->
        Obs.Metrics.observe obs_shard_events p.Ddg.Depprof.Sharded.pt_events;
        Obs.Metrics.observe obs_shard_edges p.Ddg.Depprof.Sharded.pt_dep_edges;
        Obs.Metrics.set_max obs_peak_shadow p.Ddg.Depprof.Sharded.pt_peak_shadow)
      partials;
  let per f = Array.of_list (List.map f partials) in
  { result;
    par_stats =
      { domains;
        per_domain_events = per (fun p -> p.Ddg.Depprof.Sharded.pt_events);
        per_domain_dep_edges = per (fun p -> p.Ddg.Depprof.Sharded.pt_dep_edges);
        per_domain_peak_shadow =
          per (fun p -> p.Ddg.Depprof.Sharded.pt_peak_shadow);
        replay_seconds = t1 -. t0;
        merge_seconds = t2 -. t1 } }

let run_workers ?config ~domains ~feed prog ~structure =
  let t0 = Obs.Clock.monotonic () in
  let shard_worker ~shard ~nshards =
    Obs.Metrics.add obs_workers 1;
    Obs.Span.with_ ~cat:"stream" (Printf.sprintf "par.shard%d" shard)
    @@ fun () ->
    Ddg.Depprof.Sharded.worker ?config ~shard ~nshards ~feed:(feed shard) prog
      ~structure
  in
  let partials =
    if domains = 1 then [ shard_worker ~shard:0 ~nshards:1 ]
    else begin
      let spawned =
        List.init (domains - 1) (fun i ->
            let shard = i + 1 in
            Domain.spawn (fun () ->
                let p = shard_worker ~shard ~nshards:domains in
                Obs.Metrics.flush_domain ();
                p))
      in
      join_all ~main:(fun () -> shard_worker ~shard:0 ~nshards:domains) spawned
    end
  in
  (t0, Obs.Clock.monotonic (), partials)

let profile_trace ?config ?domains trace ~run_stats prog ~structure =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let feed _shard cb = Vm.Trace.replay trace cb in
  let t0, t1, partials = run_workers ?config ~domains ~feed prog ~structure in
  finish ?config ~t0 ~t1 ~partials ~run_stats ~structure ~domains ()

let profile_file ?config ?domains path prog ~structure =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  (* each worker streams its own Source: peak memory stays one chunk per
     domain plus the live shadow/fold state *)
  let stats = Array.make domains None in
  let feed shard cb =
    Source.with_file path (fun src ->
        Source.replay src cb;
        stats.(shard) <- Source.stats src)
  in
  let t0, t1, partials = run_workers ?config ~domains ~feed prog ~structure in
  let run_stats =
    match stats.(0) with
    | Some s -> s
    | None ->
        Error.fail "%s: trace has no stats trailer; cannot profile (re-record \
                    with Trace_file.record_to_file or Sink.close ~stats)"
          path
  in
  finish ?config ~t0 ~t1 ~partials ~run_stats ~structure ~domains ()
