(* Bounded-memory streaming trace writer: events are encoded into an
   in-memory chunk payload and flushed to the channel every time the
   payload reaches the chunk budget.  Peak memory is one chunk,
   independent of trace length. *)

type t = {
  oc : out_channel;
  owned : bool;
  chunk_bytes : int;
  body : Buffer.t;
  scratch : Buffer.t;
  d : Codec.delta;
  mutable chunk_events : int;
  mutable n_events : int;
  mutable n_chunks : int;
  mutable bytes_written : int;
  mutable closed : bool;
}

let default_chunk_bytes = 64 * 1024

let obs_events = Obs.Metrics.counter ~help:"events encoded to binary trace sinks" "stream.encode.events"
let obs_chunks = Obs.Metrics.counter ~help:"chunks written to binary trace sinks" "stream.encode.chunks"
let obs_bytes = Obs.Metrics.counter ~help:"bytes written to binary trace sinks" "stream.encode.bytes"
let obs_op_hits = Obs.Metrics.counter ~help:"operand-dictionary hits while encoding" "stream.encode.dict_op_hits"
let obs_op_misses = Obs.Metrics.counter ~help:"operand-dictionary misses while encoding" "stream.encode.dict_op_misses"
let obs_f_hits = Obs.Metrics.counter ~help:"float-dictionary hits while encoding" "stream.encode.dict_float_hits"
let obs_f_misses = Obs.Metrics.counter ~help:"float-dictionary misses while encoding" "stream.encode.dict_float_misses"

let to_channel ?(chunk_bytes = default_chunk_bytes) oc =
  output_string oc Codec.magic;
  output_char oc (Char.chr Codec.version);
  { oc;
    owned = false;
    chunk_bytes = max 512 chunk_bytes;
    body = Buffer.create (chunk_bytes + 256);
    scratch = Buffer.create 32;
    d = Codec.delta ();
    chunk_events = 0;
    n_events = 0;
    n_chunks = 0;
    bytes_written = String.length Codec.magic + 1;
    closed = false }

let create ?chunk_bytes path =
  let oc = open_out_bin path in
  { (to_channel ?chunk_bytes oc) with owned = true }

let write_chunk t kind payload_head payload_body =
  let crc = Crc32.string ~crc:(Crc32.string payload_head) payload_body in
  output_char t.oc kind;
  Buffer.clear t.scratch;
  Varint.put_u t.scratch (String.length payload_head + String.length payload_body);
  Buffer.output_buffer t.oc t.scratch;
  let c = Int32.to_int (Int32.logand crc 0xFFFFFFFFl) land 0xFFFFFFFF in
  for i = 0 to 3 do
    output_char t.oc (Char.chr ((c lsr (8 * i)) land 0xFF))
  done;
  output_string t.oc payload_head;
  output_string t.oc payload_body;
  t.bytes_written <-
    t.bytes_written + 1 + Buffer.length t.scratch + 4 + String.length payload_head
    + String.length payload_body;
  t.n_chunks <- t.n_chunks + 1

let flush_events t =
  if t.chunk_events > 0 then begin
    Buffer.clear t.scratch;
    Varint.put_u t.scratch t.chunk_events;
    let head = Buffer.contents t.scratch in
    write_chunk t Codec.kind_events head (Buffer.contents t.body);
    Buffer.clear t.body;
    Codec.reset_delta t.d;
    t.chunk_events <- 0
  end

let event t ev =
  if t.closed then invalid_arg "Stream.Sink.event: sink is closed";
  Codec.encode t.d t.body ev;
  t.chunk_events <- t.chunk_events + 1;
  t.n_events <- t.n_events + 1;
  if Buffer.length t.body >= t.chunk_bytes then flush_events t

let callbacks t =
  { Vm.Interp.on_control = (fun c -> event t (Vm.Event.Control c));
    on_exec = (fun e -> event t (Vm.Event.Exec e)) }

let close ?stats t =
  if not t.closed then begin
    flush_events t;
    (match stats with
    | Some s ->
        Buffer.clear t.body;
        Codec.encode_stats t.body s;
        write_chunk t Codec.kind_stats "" (Buffer.contents t.body);
        Buffer.clear t.body
    | None -> ());
    flush t.oc;
    if t.owned then close_out t.oc;
    t.closed <- true;
    if Obs.Registry.enabled () then begin
      Obs.Metrics.add obs_events t.n_events;
      Obs.Metrics.add obs_chunks t.n_chunks;
      Obs.Metrics.add obs_bytes t.bytes_written;
      let oh, om, fh, fm = Codec.dict_stats t.d in
      Obs.Metrics.add obs_op_hits oh;
      Obs.Metrics.add obs_op_misses om;
      Obs.Metrics.add obs_f_hits fh;
      Obs.Metrics.add obs_f_misses fm
    end
  end

let n_events t = t.n_events
let n_chunks t = t.n_chunks
let bytes_written t = t.bytes_written
