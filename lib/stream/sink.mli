(** Bounded-memory streaming trace writer.

    Events are delta-encoded into a chunk buffer flushed every
    [chunk_bytes] (default 64 KiB); memory use is one chunk regardless
    of trace length.  The file starts with the codec magic and version;
    {!close} optionally appends the run's {!Vm.Interp.stats} as a
    trailer chunk so replay-based profiling can report them. *)

type t

val default_chunk_bytes : int

val create : ?chunk_bytes:int -> string -> t
(** Open [path] for writing and emit the header. *)

val to_channel : ?chunk_bytes:int -> out_channel -> t
(** Same on an already-open channel (not closed by {!close}). *)

val event : t -> Vm.Event.t -> unit

val callbacks : t -> Vm.Interp.callbacks
(** Interpreter callbacks that stream every event into the sink —
    out-of-core trace recording is
    [Interp.run ~callbacks:(Sink.callbacks sink) prog]. *)

val close : ?stats:Vm.Interp.stats -> t -> unit
(** Flush the pending chunk, write the stats trailer if given, and close
    the underlying file.  Idempotent. *)

val n_events : t -> int
val n_chunks : t -> int
val bytes_written : t -> int
(** Total file bytes produced so far (header + flushed chunks). *)
