(** LEB128 varints + zigzag signed encoding + raw little-endian 64-bit
    floats, over [Buffer] (write side) and a positioned byte reader
    (read side).  All decode failures raise {!Error.Error}. *)

type reader = { buf : Bytes.t; mutable pos : int; limit : int }

val reader : ?pos:int -> ?limit:int -> Bytes.t -> reader
val eof : reader -> bool

val put_u : Buffer.t -> int -> unit
(** Unsigned (non-negative) varint; 63-bit payload. *)

val get_u : reader -> int

val put_s : Buffer.t -> int -> unit
(** Signed varint via zigzag — full native int range. *)

val get_s : reader -> int

val zigzag : int -> int
val unzigzag : int -> int

val put_f64 : Buffer.t -> float -> unit
val get_f64 : reader -> float
