exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt
