(* Whole-trace persistence on top of the chunked codec: the replacement
   for the old [Vm.Trace.save]/[load] Marshal path. *)

type write_info = {
  wi_events : int;
  wi_chunks : int;
  wi_bytes : int;
  wi_stats : Vm.Interp.stats;
  wi_seconds : float;
}

let save ?chunk_bytes ?stats trace path =
  let sink = Sink.create ?chunk_bytes path in
  Vm.Trace.iter (Sink.event sink) trace;
  Sink.close ?stats sink;
  Sink.bytes_written sink

let record_to_file ?max_steps ?args ?chunk_bytes ?elide prog path =
  Obs.Span.with_ ~cat:"stream" "stream.record_to_file" @@ fun () ->
  let t0 = Obs.Clock.monotonic () in
  let sink = Sink.create ?chunk_bytes path in
  let callbacks =
    let cb = Sink.callbacks sink in
    match elide with
    | None -> cb
    | Some pruned ->
        (* drop the address fields of statically-resolved accesses: the
           codec encodes the absence in the flags byte and the
           static-prune replay reconstructs the addresses from the plan *)
        { cb with
          Vm.Interp.on_exec =
            (fun e ->
              if
                (e.Vm.Event.addr_read <> None
                || e.Vm.Event.addr_written <> None)
                && pruned e.Vm.Event.sid
              then
                cb.Vm.Interp.on_exec
                  { e with Vm.Event.addr_read = None; addr_written = None }
              else cb.Vm.Interp.on_exec e) }
  in
  let stats =
    match Vm.Interp.run ?max_steps ?args ~callbacks prog with
    | stats -> stats
    | exception e ->
        (* do not leave a truncated file behind on a trapped run *)
        Sink.close sink;
        (try Sys.remove path with Sys_error _ -> ());
        raise e
  in
  Sink.close ~stats sink;
  { wi_events = Sink.n_events sink;
    wi_chunks = Sink.n_chunks sink;
    wi_bytes = Sink.bytes_written sink;
    wi_stats = stats;
    wi_seconds = Obs.Clock.monotonic () -. t0 }

let load path =
  Obs.Span.with_ ~cat:"stream" "stream.load" @@ fun () ->
  Source.with_file path (fun src ->
      let buf = ref [] in
      let n = ref 0 in
      Source.iter src (fun ev ->
          incr n;
          buf := ev :: !buf);
      let events =
        Array.make !n (Vm.Event.Control (Vm.Event.Jump { fid = 0; src = 0; dst = 0 }))
      in
      List.iteri (fun i e -> events.(!n - 1 - i) <- e) !buf;
      (Vm.Trace.of_events events, Source.stats src))
