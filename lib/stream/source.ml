(* Streaming trace reader: validates the header, then decodes chunk by
   chunk — peak memory is one chunk payload, independent of trace
   length.  Every framing defect (bad magic, unsupported version,
   truncated chunk, CRC mismatch, malformed payload) raises
   [Error.Error] with a diagnostic. *)

type t = {
  ic : in_channel;
  path : string;
  d : Codec.delta;
  mutable stats : Vm.Interp.stats option;
  mutable n_events : int;
  mutable n_chunks : int;
  mutable consumed : bool;
}

let obs_events = Obs.Metrics.counter ~help:"events decoded from binary trace sources" "stream.decode.events"
let obs_chunks = Obs.Metrics.counter ~help:"chunks decoded from binary trace sources" "stream.decode.chunks"

let read_exact ic n what =
  try really_input_string ic n
  with End_of_file -> Error.fail "trace: truncated file (%s)" what

let get_u_ch ic what =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 62 then Error.fail "trace: overlong varint (%s)" what;
    let c =
      try Char.code (input_char ic)
      with End_of_file -> Error.fail "trace: truncated file (%s)" what
    in
    v := !v lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c land 0x80 = 0 then continue := false
  done;
  !v

let open_file path =
  let ic =
    try open_in_bin path
    with Sys_error e -> Error.fail "trace: cannot open %s: %s" path e
  in
  let m =
    try really_input_string ic (String.length Codec.magic)
    with End_of_file ->
      close_in_noerr ic;
      Error.fail "trace: %s: file too short for a trace header" path
  in
  if m <> Codec.magic then begin
    close_in_noerr ic;
    Error.fail "trace: %s: bad magic %S (not a polyprof binary trace)" path m
  end;
  let v =
    try Char.code (input_char ic)
    with End_of_file ->
      close_in_noerr ic;
      Error.fail "trace: %s: truncated file (missing version byte)" path
  in
  if v <> Codec.version then begin
    close_in_noerr ic;
    Error.fail "trace: %s: unsupported format version %d (expected %d)" path v
      Codec.version
  end;
  { ic; path; d = Codec.delta (); stats = None; n_events = 0; n_chunks = 0;
    consumed = false }

let iter t f =
  if t.consumed then invalid_arg "Stream.Source.iter: source already consumed";
  t.consumed <- true;
  let continue = ref true in
  while !continue do
    match input_char t.ic with
    | exception End_of_file -> continue := false
    | kind ->
        let len = get_u_ch t.ic "chunk length" in
        if len < 0 || len > Codec.max_chunk_payload then
          Error.fail "trace: %s: corrupt chunk length %d" t.path len;
        let crc_s = read_exact t.ic 4 "chunk checksum" in
        let expect =
          let x = ref 0l in
          for i = 3 downto 0 do
            x := Int32.logor (Int32.shift_left !x 8) (Int32.of_int (Char.code crc_s.[i]))
          done;
          !x
        in
        let payload = Bytes.of_string (read_exact t.ic len "chunk payload") in
        let crc = Crc32.bytes payload in
        if crc <> expect then
          Error.fail "trace: %s: chunk %d CRC mismatch (stored %08lx, computed %08lx)"
            t.path t.n_chunks expect crc;
        t.n_chunks <- t.n_chunks + 1;
        if kind = Codec.kind_events then
          t.n_events <- t.n_events + Codec.decode_events t.d payload f
        else if kind = Codec.kind_stats then t.stats <- Some (Codec.decode_stats payload)
        else
          Error.fail "trace: %s: unknown chunk kind %C" t.path kind
  done;
  if Obs.Registry.enabled () then begin
    Obs.Metrics.add obs_events t.n_events;
    Obs.Metrics.add obs_chunks t.n_chunks
  end

let replay t (cb : Vm.Interp.callbacks) =
  iter t (function
    | Vm.Event.Control c -> cb.Vm.Interp.on_control c
    | Vm.Event.Exec e -> cb.Vm.Interp.on_exec e)

let stats t = t.stats
let n_events t = t.n_events
let n_chunks t = t.n_chunks
let close t = close_in_noerr t.ic

let with_file path f =
  let t = open_file path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
