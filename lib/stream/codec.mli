(** Versioned, self-describing binary event codec (wire format v1).

    Events are packed with tag bytes, presence flags and
    varint/zigzag-coded fields; program counters (sids) and memory
    addresses are delta-coded against the previous event of the chunk,
    float values and per-sid register operand lists go through
    per-chunk dictionaries.  All per-chunk coding state resets at each
    chunk boundary so chunk payloads decode independently.  Call-stack
    depth is not stored at all: the decoder re-derives it by counting
    call/return events (so a stream whose exec depths disagree with its
    own control events is normalised to the derived depth).  See the
    .ml header for the exact layout. *)

val magic : string
(** 8-byte file magic, ["PLYPROF1"]. *)

val version : int

val kind_events : char
val kind_stats : char

val max_chunk_payload : int
(** Upper bound accepted for a chunk's declared payload length. *)

(** Coding state, one per stream being encoded or decoded: per-chunk
    predictors/dictionaries plus the cross-chunk derived call depth. *)
type delta

val delta : unit -> delta

val dict_stats : delta -> int * int * int * int
(** Cumulative encoder dictionary telemetry
    [(operand hits, operand misses, float hits, float misses)]; unlike
    the dictionaries themselves these survive {!reset_delta}, so a sink
    can report whole-stream hit rates. *)

val reset_delta : delta -> unit
(** Reset the per-chunk parts (predictors and dictionaries); the
    derived call depth survives, since the call stack spans chunks. *)

val encode : delta -> Buffer.t -> Vm.Event.t -> unit
(** Append one event to a chunk payload under construction. *)

val decode_events : delta -> Bytes.t -> (Vm.Event.t -> unit) -> int
(** Decode a full events-chunk payload (resetting [delta]'s per-chunk
    state first), calling the consumer on each event in order; returns
    the event count.  Pass the same [delta] for every chunk of a
    stream, in order, so the derived call depth carries over.
    @raise Error.Error on any malformed payload. *)

val encode_stats : Buffer.t -> Vm.Interp.stats -> unit
val decode_stats : Bytes.t -> Vm.Interp.stats
