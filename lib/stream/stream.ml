(** Out-of-core binary trace codec and parallel sharded dependence
    profiling.

    Wire format (version 1): a [PLYPROF1] magic + version byte header
    followed by self-contained chunks, each [kind | varint payload
    length | CRC-32 | payload].  Event payloads delta-encode program
    counters and addresses with zigzag varints; a trailer chunk carries
    the run's interpreter stats.  {!Sink}/{!Source} write and read
    traces chunk-at-a-time in bounded memory; {!Trace_file} is the
    whole-trace convenience layer; {!Par_profile} shards the dependence
    profiler across OCaml domains with a deterministic merge. *)

exception Error = Error.Error
(** Raised on malformed input: bad magic/version, truncation, CRC
    mismatch, varint overflow.  The payload is a diagnostic naming the
    file and defect. *)

module Crc32 = Crc32
module Varint = Varint
module Codec = Codec
module Sink = Sink
module Source = Source
module Trace_file = Trace_file
module Par_profile = Par_profile
