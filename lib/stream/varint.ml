(* LEB128-style variable-length integers.  Unsigned varints carry 7 bits
   per byte, high bit = continuation.  Signed values go through zigzag
   so small negative deltas stay short.  OCaml ints are 63-bit here;
   [put_u]/[get_u] treat the int as an unsigned 63-bit payload (the
   zigzag layer is what gives negatives a meaning). *)

type reader = { buf : Bytes.t; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit buf =
  let limit = match limit with Some l -> l | None -> Bytes.length buf in
  { buf; pos; limit }

let eof r = r.pos >= r.limit

let put_u b v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let lo = !v land 0x7f in
    (* logical shift: the sign bit must not stick for the top chunk *)
    v := (!v lsr 7) land max_int;
    if !v = 0 then begin
      Buffer.add_char b (Char.chr lo);
      continue := false
    end
    else Buffer.add_char b (Char.chr (lo lor 0x80))
  done

let get_u r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if r.pos >= r.limit then
      Error.fail "varint: truncated at byte %d" r.pos;
    if !shift > 62 then Error.fail "varint: overlong encoding at byte %d" r.pos;
    let c = Char.code (Bytes.get r.buf r.pos) in
    r.pos <- r.pos + 1;
    v := !v lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c land 0x80 = 0 then continue := false
  done;
  !v

(* Zigzag: 0, -1, 1, -2, 2 ... -> 0, 1, 2, 3, 4 ... *)
let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))

let put_s b v = put_u b (zigzag v)
let get_s r = unzigzag (get_u r)

let put_f64 b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let get_f64 r =
  if r.pos + 8 > r.limit then Error.fail "varint: truncated float at byte %d" r.pos;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left (Int64.of_int (Char.code (Bytes.get r.buf (r.pos + i)))) (8 * i))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits
