(** Whole-trace persistence on the chunked binary codec — the successor
    of the deleted [Vm.Trace] Marshal path. *)

type write_info = {
  wi_events : int;
  wi_chunks : int;
  wi_bytes : int;  (** file size produced *)
  wi_stats : Vm.Interp.stats;
  wi_seconds : float;  (** wall time of run + encode *)
}

val save : ?chunk_bytes:int -> ?stats:Vm.Interp.stats -> Vm.Trace.t -> string -> int
(** Encode a recorded trace to [path]; returns the bytes written.  Pass
    [stats] (from {!Vm.Trace.record}) to append the stats trailer that
    replay-based profiling reports as [run_stats]. *)

val record_to_file :
  ?max_steps:int -> ?args:int list -> ?chunk_bytes:int ->
  ?elide:(Vm.Isa.Sid.t -> bool) -> Vm.Prog.t -> string ->
  write_info
(** Execute the program, streaming every event straight to [path]
    (out-of-core: peak memory is one chunk, not the trace).  The stats
    trailer is always written.  If the run traps, the partial file is
    removed and the trap re-raised.

    [elide sid] marks statically-resolved accesses whose address fields
    are dropped from the trace (the codec's presence flags make absent
    addresses free): profiling such a trace requires the matching
    {!Ddg.Depprof} [~static_prune] plan, which reconstructs the
    addresses.  The elision shrinks the trace file — the measured
    benefit of instrumentation pruning on the out-of-core path. *)

val load : string -> Vm.Trace.t * Vm.Interp.stats option
(** Decode a trace file into memory.
    @raise Error.Error on bad magic/version, truncation or corruption. *)
